//! Crash-safe checkpointing for the wild study.
//!
//! The paper's pipeline ran unattended for four months; ours loses the
//! whole run to any interruption of the in-memory day loop. This
//! module snapshots pipeline state at crawl-day boundaries into
//! durable files and restores the newest *valid* snapshot on resume.
//!
//! A snapshot does **not** serialize the world (Play Store ledgers,
//! IIP escrow, collector): the day loop splits into *sim* steps
//! (campaign starts, organic activity, delivery, enforcement, ends)
//! that are cheap, purely in-memory, and consume only the single
//! `"wildsim"` RNG, and *measurement* steps (milking, crawls) that are
//! expensive but world-read-only with independent seed lineages. So a
//! resume rebuilds the world from config (a pure function of the
//! seed), replays the sim steps up to the snapshot day — regenerating
//! Play/IIP state and the RNG bit-exactly — and restores only what
//! replay cannot reproduce: the dataset (with both interner tables, so
//! symbol numbering survives), the chart crawler's client state, the
//! chaos/wire counter ledgers. The snapshot's encoded sim section
//! doubles as a verification oracle: the replayed sim state must match
//! it byte-for-byte or the resume is refused.
//!
//! Durability: snapshots are written to a temp file, fsynced, atomically
//! renamed into place, and the directory fsynced — a torn write leaves
//! either the previous snapshot set intact or a partial temp file that
//! is never considered. Corruption (bit flips, truncation) is caught by
//! the CRC framing of [`iiscope_types::frame`]; a corrupt newest
//! snapshot is logged and skipped back to the previous valid one.

use crate::aggregates::ReportAggregates;
use crate::chaos::fnv64;
use crate::config::WorldConfig;
use iiscope_monitor::parsers::ScrapedOffer;
use iiscope_monitor::spill::{SegRef, SpillManifest, SpillRow};
use iiscope_monitor::{ChartSnapshot, ProfileSnapshot};
use iiscope_types::frame::{Dec, Enc, FrameError, FrameReader, FrameWriter};
use iiscope_types::Interner;
use iiscope_wire::ClientState;
use rand::rngs::RngState;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Payload schema revision carried in the META section. Bump on any
/// layout change; decoding rejects unknown versions instead of
/// guessing. Version 2 added the SPILL section: the offer and chart
/// logs' disk-resident segments are checkpointed *by reference*
/// (file + per-segment CRC) instead of being re-serialized into every
/// snapshot, so snapshot cost tracks the resident suffix, not the
/// full run history. Version 3 added the optional AGGS section
/// (incremental report-aggregate state); v2 snapshots still decode —
/// their aggregates are refolded from the restored dataset on resume.
pub const SNAPSHOT_VERSION: u32 = 3;

const SEC_META: u8 = 1;
const SEC_SIM: u8 = 2;
const SEC_SYMS: u8 = 3;
const SEC_OFFERS: u8 = 4;
const SEC_PROFILES: u8 = 5;
const SEC_CHARTS: u8 = 6;
const SEC_CRAWLER: u8 = 7;
const SEC_COUNTERS: u8 = 8;
const SEC_SPILL: u8 = 9;
const SEC_AGGS: u8 = 10;

/// A named counter ledger (`chaosstats`/`wirestats` snapshot form).
pub type Ledger = Vec<(String, u64)>;

/// A decoded checkpoint snapshot: the measurement-side state restored
/// verbatim, plus the opaque sim-section bytes the deterministic
/// replay is verified against.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Last fully completed sim day.
    pub day: u64,
    /// World seed the run was started with.
    pub seed: u64,
    /// Fingerprint of the result-relevant configuration.
    pub fingerprint: u64,
    /// Encoded sim-side state (RNG position, offer runtimes, pending
    /// schedule, counters, clock) — compared byte-for-byte against the
    /// replayed state on resume, never decoded.
    pub sim_bytes: Vec<u8>,
    /// Chart crawler HTTP-client state (RNG + connection lineage).
    pub crawler: ClientState,
    /// Package symbol table at snapshot time, rank order.
    pub pkg_syms: Interner,
    /// Description symbol table at snapshot time, rank order.
    pub desc_syms: Interner,
    /// Spilled prefix of the offer log, by reference: the spill file
    /// plus one CRC-checked [`SegRef`] per disk segment. Restore
    /// re-attaches and validates the file instead of re-reading rows
    /// out of the snapshot.
    pub offers_spill: SpillManifest,
    /// Resident suffix of the offer log (rows not covered by
    /// `offers_spill`), arrival order.
    pub offers: Vec<ScrapedOffer>,
    /// Raw profile log, arrival order.
    pub profiles: Vec<ProfileSnapshot>,
    /// Spilled prefix of the chart log, by reference.
    pub charts_spill: SpillManifest,
    /// Resident suffix of the chart log, arrival order.
    pub charts: Vec<ChartSnapshot>,
    /// Chaos counter ledger at snapshot time.
    pub chaos_counters: Ledger,
    /// Wire counter ledger at snapshot time.
    pub wire_counters: Ledger,
    /// Incremental report-aggregate state at snapshot time (v3;
    /// `None` for v2 snapshots — resume refolds from the restored
    /// dataset instead).
    pub aggregates: Option<ReportAggregates>,
}

/// Cumulative cost of checkpoint writes (and the resume replay) over a
/// run — surfaced by `repro --timing` as `BENCH_checkpoint.json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointStats {
    /// Snapshots written this run.
    pub snapshots_written: u64,
    /// Size of the newest snapshot, bytes.
    pub last_bytes: u64,
    /// Sum of all snapshot sizes, bytes.
    pub total_bytes: u64,
    /// Wall-clock seconds spent encoding + durably writing snapshots.
    pub total_write_secs: f64,
    /// Day the run resumed from, when it did.
    pub resumed_from_day: Option<u64>,
    /// Wall-clock seconds the resume replay + verification took.
    pub replay_secs: f64,
}

/// Fingerprint of every configuration field that influences study
/// *results*. `parallelism` is deliberately excluded: the study is
/// bit-identical across worker counts, so a snapshot written at 8
/// workers legitimately resumes at 1 and vice versa. `memory_budget`
/// and `spill_dir` are excluded for the same reason — any budget
/// produces identical results, so a spilling run legitimately resumes
/// fully resident and vice versa. `scale` and `shards` *are* included:
/// both change the generated population and therefore the results.
pub fn config_fingerprint(cfg: &WorldConfig) -> u64 {
    let relevant = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        cfg.advertised_apps,
        cfg.baseline_apps,
        cfg.monitoring_days,
        cfg.crawl_cadence_days,
        cfg.honey_purchase,
        cfg.milk_countries,
        cfg.fuzzer_pages,
        cfg.enforcement,
        cfg.ranking,
        cfg.chart_size,
        cfg.walls_pin_certificates,
        cfg.companion_marketing,
        cfg.rating_offers,
        cfg.scale,
        cfg.shards,
    );
    fnv64(relevant.as_bytes())
}

impl Snapshot {
    /// Refuses a snapshot written under a different seed or a
    /// result-relevant configuration change.
    pub fn check_compatible(&self, cfg: &WorldConfig) -> Result<(), String> {
        if self.seed != cfg.seed {
            return Err(format!(
                "snapshot seed {} != configured seed {}",
                self.seed, cfg.seed
            ));
        }
        let want = config_fingerprint(cfg);
        if self.fingerprint != want {
            return Err(format!(
                "snapshot config fingerprint {:#018x} != current {:#018x} \
                 (result-relevant configuration changed since checkpoint)",
                self.fingerprint, want
            ));
        }
        Ok(())
    }

    /// Serializes the snapshot into a frame file.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_as(SNAPSHOT_VERSION)
    }

    /// Version-parameterized encoder: version 2 omits the AGGS section
    /// (its wire layout predates aggregates). Only tests downgrade;
    /// the public path always writes [`SNAPSHOT_VERSION`].
    fn encode_as(&self, version: u32) -> Vec<u8> {
        let mut w = FrameWriter::new();

        let mut meta = Enc::new();
        meta.u8(SEC_META)
            .u32(version)
            .u64(self.seed)
            .u64(self.fingerprint)
            .u64(self.day);
        w.record(meta.bytes());

        let mut sim = Enc::new();
        sim.u8(SEC_SIM).bytes_field(&self.sim_bytes);
        w.record(sim.bytes());

        let mut syms = Enc::new();
        syms.u8(SEC_SYMS);
        enc_interner(&mut syms, &self.pkg_syms);
        enc_interner(&mut syms, &self.desc_syms);
        w.record(syms.bytes());

        let mut spill = Enc::new();
        spill.u8(SEC_SPILL);
        enc_manifest(&mut spill, &self.offers_spill);
        enc_manifest(&mut spill, &self.charts_spill);
        w.record(spill.bytes());

        let mut offers = Enc::new();
        offers.u8(SEC_OFFERS).u64(self.offers.len() as u64);
        for o in &self.offers {
            o.enc_row(&mut offers);
        }
        w.record(offers.bytes());

        let mut profiles = Enc::new();
        profiles.u8(SEC_PROFILES).u64(self.profiles.len() as u64);
        for p in &self.profiles {
            p.enc_row(&mut profiles);
        }
        w.record(profiles.bytes());

        let mut charts = Enc::new();
        charts.u8(SEC_CHARTS).u64(self.charts.len() as u64);
        for c in &self.charts {
            c.enc_row(&mut charts);
        }
        w.record(charts.bytes());

        let mut crawler = Enc::new();
        crawler.u8(SEC_CRAWLER);
        enc_rng(&mut crawler, &self.crawler.rng);
        crawler.u64(self.crawler.conn_seq);
        w.record(crawler.bytes());

        let mut counters = Enc::new();
        counters.u8(SEC_COUNTERS);
        enc_ledger(&mut counters, &self.chaos_counters);
        enc_ledger(&mut counters, &self.wire_counters);
        w.record(counters.bytes());

        if version >= 3 {
            if let Some(aggs) = &self.aggregates {
                let mut a = Enc::new();
                a.u8(SEC_AGGS);
                aggs.encode(&mut a);
                w.record(a.bytes());
            }
        }

        w.finish()
    }

    /// Deserializes and fully validates a frame file. Total: corrupt or
    /// adversarial bytes return `Err`, never panic, never wrong data.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, FrameError> {
        let mut reader = FrameReader::new(bytes)?;
        let mut meta: Option<(u64, u64, u64)> = None;
        let mut sim_bytes: Option<Vec<u8>> = None;
        let mut syms: Option<(Interner, Interner)> = None;
        let mut offers: Option<Vec<ScrapedOffer>> = None;
        let mut profiles: Option<Vec<ProfileSnapshot>> = None;
        let mut charts: Option<Vec<ChartSnapshot>> = None;
        let mut crawler: Option<ClientState> = None;
        let mut counters: Option<(Ledger, Ledger)> = None;
        let mut spill: Option<(SpillManifest, SpillManifest)> = None;
        let mut aggregates: Option<ReportAggregates> = None;

        while let Some(payload) = reader.next_record()? {
            let mut d = Dec::new(payload);
            match d.u8()? {
                SEC_META => {
                    let version = d.u32()?;
                    // v2 snapshots (pre-AGGS) remain readable: the
                    // aggregate state is a pure fold of the dataset,
                    // so resume reconstructs it instead.
                    if version != 2 && version != SNAPSHOT_VERSION {
                        return Err(FrameError::Codec("unsupported snapshot version"));
                    }
                    meta = Some((d.u64()?, d.u64()?, d.u64()?));
                    d.finish()?;
                }
                SEC_SIM => {
                    sim_bytes = Some(d.bytes_field()?.to_vec());
                    d.finish()?;
                }
                SEC_SYMS => {
                    let pkg = dec_interner(&mut d)?;
                    let desc = dec_interner(&mut d)?;
                    d.finish()?;
                    syms = Some((pkg, desc));
                }
                SEC_SPILL => {
                    let o = dec_manifest(&mut d)?;
                    let c = dec_manifest(&mut d)?;
                    d.finish()?;
                    spill = Some((o, c));
                }
                SEC_OFFERS => {
                    let n = d.u64()?;
                    let mut v = Vec::new();
                    for _ in 0..n {
                        v.push(ScrapedOffer::dec_row(&mut d)?);
                    }
                    d.finish()?;
                    offers = Some(v);
                }
                SEC_PROFILES => {
                    let n = d.u64()?;
                    let mut v = Vec::new();
                    for _ in 0..n {
                        v.push(ProfileSnapshot::dec_row(&mut d)?);
                    }
                    d.finish()?;
                    profiles = Some(v);
                }
                SEC_CHARTS => {
                    let n = d.u64()?;
                    let mut v = Vec::new();
                    for _ in 0..n {
                        v.push(ChartSnapshot::dec_row(&mut d)?);
                    }
                    d.finish()?;
                    charts = Some(v);
                }
                SEC_CRAWLER => {
                    let rng = dec_rng(&mut d)?;
                    let conn_seq = d.u64()?;
                    d.finish()?;
                    crawler = Some(ClientState { rng, conn_seq });
                }
                SEC_COUNTERS => {
                    let chaos = dec_ledger(&mut d)?;
                    let wire = dec_ledger(&mut d)?;
                    d.finish()?;
                    counters = Some((chaos, wire));
                }
                SEC_AGGS => {
                    let aggs = ReportAggregates::decode(&mut d)?;
                    d.finish()?;
                    aggregates = Some(aggs);
                }
                _ => return Err(FrameError::Codec("unknown snapshot section")),
            }
        }

        let (seed, fingerprint, day) = meta.ok_or(FrameError::Codec("missing META section"))?;
        let (pkg_syms, desc_syms) = syms.ok_or(FrameError::Codec("missing SYMS section"))?;
        let (chaos_counters, wire_counters) =
            counters.ok_or(FrameError::Codec("missing COUNTERS section"))?;
        let (offers_spill, charts_spill) =
            spill.ok_or(FrameError::Codec("missing SPILL section"))?;
        Ok(Snapshot {
            day,
            seed,
            fingerprint,
            sim_bytes: sim_bytes.ok_or(FrameError::Codec("missing SIM section"))?,
            crawler: crawler.ok_or(FrameError::Codec("missing CRAWLER section"))?,
            pkg_syms,
            desc_syms,
            offers_spill,
            offers: offers.ok_or(FrameError::Codec("missing OFFERS section"))?,
            profiles: profiles.ok_or(FrameError::Codec("missing PROFILES section"))?,
            charts_spill,
            charts: charts.ok_or(FrameError::Codec("missing CHARTS section"))?,
            chaos_counters,
            wire_counters,
            aggregates,
        })
    }
}

fn enc_manifest(e: &mut Enc, m: &SpillManifest) {
    match &m.file {
        Some(path) => {
            e.u8(1).str(&path.to_string_lossy());
        }
        None => {
            e.u8(0);
        }
    }
    e.u64(m.segments.len() as u64);
    for s in &m.segments {
        e.u64(s.rows).u64(s.offset).u64(s.len).u32(s.crc);
    }
}

fn dec_manifest(d: &mut Dec) -> Result<SpillManifest, FrameError> {
    let file = match d.u8()? {
        0 => None,
        1 => Some(PathBuf::from(d.str()?)),
        _ => return Err(FrameError::Codec("bad spill-file flag")),
    };
    let n = d.u64()?;
    let mut segments = Vec::new();
    for _ in 0..n {
        segments.push(SegRef {
            rows: d.u64()?,
            offset: d.u64()?,
            len: d.u64()?,
            crc: d.u32()?,
        });
    }
    if file.is_none() && !segments.is_empty() {
        return Err(FrameError::Codec("spill segments without a spill file"));
    }
    Ok(SpillManifest { file, segments })
}

fn enc_rng(e: &mut Enc, s: &RngState) {
    for k in s.key {
        e.u32(k);
    }
    e.u64(s.counter).u64(s.index as u64);
}

fn dec_rng(d: &mut Dec) -> Result<RngState, FrameError> {
    let mut key = [0u32; 8];
    for k in &mut key {
        *k = d.u32()?;
    }
    let counter = d.u64()?;
    let index = d.u64()?;
    if index > 64 {
        return Err(FrameError::Codec("rng buffer index out of range"));
    }
    Ok(RngState {
        key,
        counter,
        index: index as usize,
    })
}

fn enc_interner(e: &mut Enc, interner: &Interner) {
    e.u64(interner.len() as u64);
    for (_, s) in interner.iter() {
        e.str(s);
    }
}

fn dec_interner(d: &mut Dec) -> Result<Interner, FrameError> {
    let n = d.u64()?;
    let mut interner = Interner::new();
    for _ in 0..n {
        interner.intern(d.str()?);
    }
    if interner.len() as u64 != n {
        return Err(FrameError::Codec("interner table has duplicate strings"));
    }
    Ok(interner)
}

fn enc_ledger(e: &mut Enc, ledger: &[(String, u64)]) {
    e.u64(ledger.len() as u64);
    for (key, value) in ledger {
        e.str(key).u64(*value);
    }
}

fn dec_ledger(d: &mut Dec) -> Result<Ledger, FrameError> {
    let n = d.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let key = d.str()?.to_string();
        out.push((key, d.u64()?));
    }
    Ok(out)
}

/// Snapshot file name for a sim day: `snap-000042.ckpt`.
pub fn snapshot_path(dir: &Path, day: u64) -> PathBuf {
    dir.join(format!("snap-{day:06}.ckpt"))
}

fn day_from_path(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("snap-")?.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

/// Durably writes `bytes` as the day-`day` snapshot in `dir`:
/// write-to-temp + fsync + atomic rename + directory fsync, so a crash
/// mid-write can only lose the snapshot being written, never damage an
/// existing one.
pub fn write_durable(dir: &Path, day: u64, bytes: &[u8]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let finals = snapshot_path(dir, day);
    let tmp = dir.join(format!("snap-{day:06}.ckpt.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &finals)?;
    // Persist the rename itself. Directory fsync is POSIX-only; other
    // platforms settle for the file fsync above.
    #[cfg(unix)]
    {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(finals)
}

/// What a checkpoint-directory scan found.
#[derive(Debug)]
pub struct Scan {
    /// Newest snapshot that decoded and validated, with its path.
    pub snapshot: Option<(Snapshot, PathBuf)>,
    /// Files that looked like snapshots but failed validation, newest
    /// first, with the reason each was skipped.
    pub skipped: Vec<(PathBuf, String)>,
    /// Snapshot-named files present in the directory.
    pub candidates: usize,
}

/// Why a checkpoint directory could not be scanned at all.
#[derive(Debug)]
pub enum ScanError {
    /// The directory could not be read (missing, permissions, not a
    /// directory).
    Unreadable(String),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Unreadable(why) => write!(f, "checkpoint dir unreadable: {why}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Scans `dir` for the newest valid snapshot, skipping (and logging)
/// corrupt or partial ones. A directory with no snapshot files at all
/// yields `snapshot: None, candidates: 0` — a fresh start, which is
/// what a crash-restart loop sees on its very first boot.
pub fn load_latest(dir: &Path) -> Result<Scan, ScanError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ScanError::Unreadable(format!("{}: {e}", dir.display())))?;
    let mut days: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| ScanError::Unreadable(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if let Some(day) = day_from_path(&path) {
            days.push((day, path));
        }
    }
    days.sort_by_key(|d| std::cmp::Reverse(d.0));
    let candidates = days.len();
    let mut skipped = Vec::new();
    for (_, path) in days {
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "checkpoint: skipping unreadable snapshot {}: {e}",
                    path.display()
                );
                skipped.push((path, e.to_string()));
                continue;
            }
        };
        match Snapshot::decode(&bytes) {
            Ok(snapshot) => {
                return Ok(Scan {
                    snapshot: Some((snapshot, path)),
                    skipped,
                    candidates,
                })
            }
            Err(e) => {
                eprintln!(
                    "checkpoint: skipping corrupt snapshot {}: {e}",
                    path.display()
                );
                skipped.push((path, e.to_string()));
            }
        }
    }
    Ok(Scan {
        snapshot: None,
        skipped,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_monitor::parsers::{RawOffer, RewardValue};
    use iiscope_playstore::ChartKind;
    use iiscope_types::{Country, IipId, SimTime};

    fn sample_snapshot() -> Snapshot {
        let mut pkg_syms = Interner::new();
        pkg_syms.intern("com.a.one");
        pkg_syms.intern("com.b.two");
        let mut desc_syms = Interner::new();
        desc_syms.intern("Install and Register");
        Snapshot {
            day: 6,
            seed: 42,
            fingerprint: 0xABCD,
            sim_bytes: vec![1, 2, 3, 4, 5],
            crawler: ClientState {
                rng: RngState {
                    key: [9; 8],
                    counter: 12,
                    index: 3,
                },
                conn_seq: 77,
            },
            pkg_syms,
            desc_syms,
            offers_spill: SpillManifest {
                file: Some(PathBuf::from("/tmp/iiscope-spill/run-offers.spill")),
                segments: vec![
                    SegRef {
                        rows: 128,
                        offset: 0,
                        len: 9_001,
                        crc: 0xDEAD_BEEF,
                    },
                    SegRef {
                        rows: 64,
                        offset: 9_001,
                        len: 4_400,
                        crc: 0x1234_5678,
                    },
                ],
            },
            offers: vec![ScrapedOffer {
                iip: IipId::Fyber,
                raw: RawOffer {
                    offer_key: 11,
                    description: "Install and Register".into(),
                    reward: RewardValue::Usd(0.25),
                    package: "com.a.one".into(),
                    store_url: "https://play.iiscope/store/apps/details?id=com.a.one".into(),
                },
                seen_at: SimTime::from_days(1502),
                affiliate: "com.cash.app".into(),
                vantage: Country::Us,
            }],
            profiles: vec![ProfileSnapshot {
                day: 1502,
                package: "com.a.one".into(),
                title: "One".into(),
                genre_id: "TOOLS".into(),
                released_day: 1400,
                min_installs: 1000,
                developer_id: 7,
                developer_name: "Acme".into(),
                developer_country: "US".into(),
                developer_email: "a@acme.us".into(),
                developer_website: String::new(),
                rating: 4.25,
                rating_count: 31,
            }],
            charts_spill: SpillManifest::default(),
            charts: vec![ChartSnapshot {
                day: 1502,
                chart: ChartKind::ALL[0].id(),
                entries: vec![("com.a.one".into(), 1)],
            }],
            chaos_counters: vec![("retries".into(), 3)],
            wire_counters: vec![("bytes_delivered".into(), 912)],
            aggregates: Some(sample_aggregates()),
        }
    }

    /// A genuinely folded aggregate state (not a hand-built one), so
    /// the snapshot round-trip exercises the real digest layout.
    fn sample_aggregates() -> ReportAggregates {
        let mut ds = iiscope_monitor::Dataset::new();
        ds.add_offers([ScrapedOffer {
            iip: IipId::Fyber,
            raw: RawOffer {
                offer_key: 11,
                description: "Install and Register".into(),
                reward: RewardValue::Usd(0.25),
                package: "com.a.one".into(),
                store_url: "https://play.iiscope/store/apps/details?id=com.a.one".into(),
            },
            seen_at: SimTime::from_days(1502),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }]);
        ds.add_chart(ChartSnapshot {
            day: 1502,
            chart: ChartKind::ALL[0].id(),
            entries: vec![("com.a.one".into(), 1)],
        });
        let book = iiscope_monitor::RateBook::from_catalog(
            &iiscope_devices::AffiliateApp::table2_catalog(),
        );
        let mut aggs = ReportAggregates::new();
        aggs.fold_day(&ds, &book);
        aggs
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes).unwrap();
        assert_eq!(back.day, snap.day);
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.fingerprint, snap.fingerprint);
        assert_eq!(back.sim_bytes, snap.sim_bytes);
        assert_eq!(back.crawler, snap.crawler);
        assert_eq!(back.pkg_syms, snap.pkg_syms);
        assert_eq!(back.desc_syms, snap.desc_syms);
        assert_eq!(back.offers_spill, snap.offers_spill);
        assert_eq!(back.offers, snap.offers);
        assert_eq!(back.profiles, snap.profiles);
        assert_eq!(back.charts_spill, snap.charts_spill);
        assert_eq!(back.charts, snap.charts);
        assert_eq!(back.chaos_counters, snap.chaos_counters);
        assert_eq!(back.wire_counters, snap.wire_counters);
        assert_eq!(back.aggregates, snap.aggregates);
        assert!(back.aggregates.is_some());
    }

    #[test]
    fn v2_snapshots_decode_without_aggregates() {
        let snap = sample_snapshot();
        let back = Snapshot::decode(&snap.encode_as(2)).unwrap();
        assert!(back.aggregates.is_none(), "v2 has no AGGS section");
        assert_eq!(back.offers, snap.offers);
        assert_eq!(back.charts, snap.charts);
        // Unknown future versions are still refused, not guessed at.
        assert!(Snapshot::decode(&snap.encode_as(4)).is_err());
    }

    #[test]
    fn every_bit_flip_in_a_snapshot_is_rejected() {
        let bytes = sample_snapshot().encode();
        // Sampled sweep (full sweep is the frame codec's own test).
        for byte in (0..bytes.len()).step_by(7) {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Snapshot::decode(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
        for cut in (0..bytes.len()).step_by(11) {
            assert!(Snapshot::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn fingerprint_tracks_result_relevant_config_only() {
        let a = config_fingerprint(&WorldConfig::small(1));
        let mut cfg = WorldConfig::small(1);
        cfg.parallelism = 8;
        assert_eq!(a, config_fingerprint(&cfg), "parallelism is excluded");
        cfg.memory_budget = Some(1 << 20);
        cfg.spill_dir = Some(PathBuf::from("/tmp/elsewhere"));
        assert_eq!(a, config_fingerprint(&cfg), "spill knobs are excluded");
        cfg.scale = 10;
        assert_ne!(a, config_fingerprint(&cfg), "scale changes results");
        cfg.scale = 1;
        cfg.shards = 4;
        assert_ne!(a, config_fingerprint(&cfg), "shards change results");
        cfg.shards = 1;
        cfg.monitoring_days += 1;
        assert_ne!(a, config_fingerprint(&cfg));
        let snap = sample_snapshot();
        let mut cfg = WorldConfig::small(42);
        cfg.seed = 42;
        assert!(snap.check_compatible(&cfg).is_err(), "fingerprint differs");
        let mut wrong_seed = WorldConfig::small(43);
        wrong_seed.seed = 43;
        assert!(snap.check_compatible(&wrong_seed).is_err());
    }

    #[test]
    fn durable_write_and_scan_fall_back_past_corruption() {
        let dir = std::env::temp_dir().join(format!(
            "iiscope-ckpt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Empty/missing dir: unreadable until created.
        assert!(load_latest(&dir).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        let scan = load_latest(&dir).unwrap();
        assert!(scan.snapshot.is_none());
        assert_eq!(scan.candidates, 0);

        let mut snap = sample_snapshot();
        write_durable(&dir, snap.day, &snap.encode()).unwrap();
        snap.day = 8;
        let newest = write_durable(&dir, snap.day, &snap.encode()).unwrap();

        let scan = load_latest(&dir).unwrap();
        assert_eq!(scan.snapshot.as_ref().unwrap().0.day, 8);
        assert!(scan.skipped.is_empty());

        // Corrupt the newest (bit flip): scan falls back to day 6.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&newest, &bytes).unwrap();
        let scan = load_latest(&dir).unwrap();
        assert_eq!(scan.snapshot.as_ref().unwrap().0.day, 6);
        assert_eq!(scan.skipped.len(), 1);
        assert_eq!(scan.candidates, 2);

        // Truncate the older one too: nothing valid remains.
        let older = snapshot_path(&dir, 6);
        let bytes = std::fs::read(&older).unwrap();
        std::fs::write(&older, &bytes[..bytes.len() / 3]).unwrap();
        let scan = load_latest(&dir).unwrap();
        assert!(scan.snapshot.is_none());
        assert_eq!(scan.skipped.len(), 2);
        assert_eq!(scan.candidates, 2);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
