//! Fixed-width text table rendering for the experiment binaries and
//! `EXPERIMENTS.md`.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.len()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a count + share pair, Table 5-style: `294 (98.0%)`.
pub fn count_pct(n: u64, total: u64) -> String {
    if total == 0 {
        return format!("{n} (-)");
    }
    format!("{n} ({})", pct(n as f64 / total as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["IIP", "Type", "Median"]);
        t.row(["Fyber", "Vetted", "$0.19"]);
        t.row(["RankApp", "Unvetted", "$0.02"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("IIP"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("Fyber"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["A", "B"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.47), "47.0%");
        assert_eq!(count_pct(6, 300), "6 (2.0%)");
        assert_eq!(count_pct(1, 0), "1 (-)");
    }
}
