//! World configuration and the two standard presets.

use iiscope_playstore::{ChartRanking, EnforcementConfig};
use iiscope_types::Country;
use std::path::PathBuf;

/// Everything that parameterizes a world build and study run.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Root seed — the only source of randomness.
    pub seed: u64,
    /// Number of advertised apps running incentivized campaigns
    /// (the paper observed 922).
    pub advertised_apps: usize,
    /// Number of baseline apps (the paper sampled 300 from Lumen).
    pub baseline_apps: usize,
    /// Monitoring window length in days (the paper: ~92).
    pub monitoring_days: u64,
    /// Crawl/milk cadence in days (the paper: every other day).
    pub crawl_cadence_days: u64,
    /// Installs purchased per honey-app campaign (the paper: 500).
    pub honey_purchase: u64,
    /// Vantage-point countries for milking.
    pub milk_countries: Vec<Country>,
    /// Fuzzer scroll budget per wall tab.
    pub fuzzer_pages: usize,
    /// Worker threads for the wild study's crawl-day fan-out (milking,
    /// profile crawls, APK downloads) and the experiment suite. `1`
    /// runs everything on the calling thread — the original sequential
    /// path. Any value produces bit-identical studies, fault plan or
    /// not: every connection's fault stream is seeded from the client's
    /// own lineage and fault delays accrue to connection-local clock
    /// skew, so worker scheduling cannot reorder the randomness.
    pub parallelism: usize,
    /// Play-side enforcement profile.
    pub enforcement: EnforcementConfig,
    /// Top-chart ranking policy (ablation knob).
    pub ranking: ChartRanking,
    /// Top-chart length served by the store. The real store shows a
    /// few hundred slots over millions of apps; scaled worlds shrink
    /// the chart so charting stays *selective* (an app must beat the
    /// organic engagement of the catalog's top apps).
    pub chart_size: usize,
    /// Ablation: affiliate apps pin the genuine wall certificates,
    /// defeating the MITM interception (the paper's pipeline worked
    /// because "none of the offer walls uses certificate pinning").
    pub walls_pin_certificates: bool,
    /// Ablation: companion (non-incentivized) marketing that vetted
    /// advertisers run in parallel with their incentivized campaigns —
    /// the confound §4.3 flags ("we cannot eliminate the possibility
    /// that these increases are caused by other simultaneous
    /// advertising"). Disabling it isolates how much of Table 5's
    /// vetted effect rides on that parallel marketing.
    pub companion_marketing: bool,
    /// Extension: some campaigns sell "Install and rate N stars"
    /// offers, attacking the ratings facet of the profile (the policy
    /// page the paper cites protects "User Ratings, Reviews, and
    /// Installs" together). Off by default — the paper's §4.3.1 offer
    /// taxonomy has no rating class, so the calibrated world excludes
    /// them; the knob exists for the rating-inflation experiment.
    pub rating_offers: bool,
    /// Device/install-volume multiplier. `scale = N` multiplies every
    /// campaign's install cap and delivery rate (and the sharded
    /// audience sizes) by `N` while keeping the app catalog fixed —
    /// the axis the related download-fraud work scales along (~10M
    /// events) is events-per-app, not apps. `1` is the paper world,
    /// bit-for-bit. The honey study stays unscaled: it is the paper's
    /// fixed measurement protocol (500 installs per campaign).
    pub scale: u64,
    /// Number of population/state shards for the wild-study day loop.
    /// Offers are assigned to shards by package symbol
    /// (`iiscope_types::shard_of`, a pure function), shard sim steps
    /// run under the `parallelism` fan-out, and their effect buffers
    /// merge in shard-index order — so the result depends on `shards`
    /// but never on worker count. `1` is the unsharded legacy stream.
    pub shards: usize,
    /// Resident-memory budget in bytes for the monitor dataset's
    /// spillable columns (offer observations, chart timelines). When
    /// the columns outgrow the budget, cold segments spill to disk via
    /// the CRC-framed snapshot codec and reload through an LRU cache.
    /// `None` keeps everything resident. Byte-invariant: any budget
    /// produces the identical report and CSVs.
    pub memory_budget: Option<u64>,
    /// Directory for spill files. `None` uses a per-process directory
    /// under the system temp dir. Only consulted when `memory_budget`
    /// is set.
    pub spill_dir: Option<PathBuf>,
}

impl WorldConfig {
    /// The full-size reproduction matching the paper's scale.
    pub fn paper(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            advertised_apps: 922,
            baseline_apps: 300,
            monitoring_days: 92,
            crawl_cadence_days: 2,
            honey_purchase: 500,
            milk_countries: Country::VANTAGE_POINTS.to_vec(),
            fuzzer_pages: 60,
            parallelism: 1,
            enforcement: EnforcementConfig::default(),
            ranking: ChartRanking::EngagementWeighted,
            chart_size: 200,
            walls_pin_certificates: false,
            companion_marketing: true,
            rating_offers: false,
            scale: 1,
            shards: 1,
            memory_budget: None,
            spill_dir: None,
        }
    }

    /// A ~10× smaller world for tests: same mechanisms, minutes →
    /// seconds.
    pub fn small(seed: u64) -> WorldConfig {
        WorldConfig {
            advertised_apps: 90,
            baseline_apps: 40,
            monitoring_days: 36,
            crawl_cadence_days: 4,
            honey_purchase: 200,
            milk_countries: vec![Country::Us, Country::De],
            fuzzer_pages: 40,
            chart_size: 10,
            ..WorldConfig::paper(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = WorldConfig::paper(1);
        assert_eq!(p.advertised_apps, 922);
        assert_eq!(p.baseline_apps, 300);
        assert_eq!(p.milk_countries.len(), 8);
        assert_eq!(p.monitoring_days % p.crawl_cadence_days, 0);
        let s = WorldConfig::small(1);
        assert!(s.advertised_apps < p.advertised_apps);
        assert_eq!(s.monitoring_days % s.crawl_cadence_days, 0);
        assert!(!s.walls_pin_certificates);
        assert_eq!(p.parallelism, 1, "presets default to the sequential path");
        assert_eq!(s.parallelism, 1);
        // Scaling knobs default to the unscaled, unsharded, fully
        // resident paper world.
        assert_eq!(p.scale, 1);
        assert_eq!(p.shards, 1);
        assert!(p.memory_budget.is_none());
        assert!(s.spill_dir.is_none());
    }
}
