//! # iiscope-core
//!
//! The paper's methodology as a library. This crate assembles every
//! substrate — network, PKI, Play Store, the seven IIPs, mediator,
//! honey app, monitoring rig, population models, funding database —
//! into a [`World`], runs the two studies, and renders each table and
//! figure of the paper:
//!
//! * [`world`] — deterministic world construction from a
//!   [`WorldConfig`] (scaled presets: [`WorldConfig::paper`] for the
//!   full-size reproduction, [`WorldConfig::small`] for tests).
//! * [`wildgen`] — generation of the advertised-app population and
//!   their campaign plans, calibrated to Tables 3 and 4.
//! * [`wildsim`] — the §4 longitudinal study: campaign delivery,
//!   engagement, enforcement sweeps, offer-wall milking through the
//!   MITM rig, and Play crawls on the paper's cadence.
//! * [`honeystudy`] — the §3 experiment: sequential purchased
//!   campaigns on Fyber, ayeT-Studios and RankApp.
//! * [`experiments`] — one module per table/figure, each returning a
//!   typed result and a printable rendering; `EXPERIMENTS.md` is
//!   generated from these.
//! * [`report`] — fixed-width table rendering shared by the
//!   experiment binaries.
//! * [`chaos`] — the deterministic chaos harness: the adversarial
//!   fault grid, the one-call study runner, and the monotone
//!   telemetry-survival scenario behind `tests/chaos.rs`.
//! * [`aggregates`] — streaming per-day accumulators for the hot
//!   report tables, folded during the wild study so paper-scale
//!   reports render without re-scanning (and re-loading) the full
//!   dataset; the batch experiment paths remain the byte-parity
//!   oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregates;
pub mod chaos;
pub mod checkpoint;
pub mod config;
pub mod experiments;
pub mod honeystudy;
pub mod report;
pub mod servefront;
pub mod wildgen;
pub mod wildsim;
pub mod world;

pub use config::WorldConfig;
pub use honeystudy::HoneyStudy;
pub use wildsim::WildArtifacts;
pub use world::World;
