//! The §4 longitudinal study: run every planned campaign against the
//! live world while the monitoring rig milks offer walls and crawls
//! the Play Store on the paper's cadence.
//!
//! Day loop:
//!
//! 1. start the campaigns scheduled for the day (platform escrow,
//!    offers appear on walls);
//! 2. organic background activity for every app (installs, sessions,
//!    revenue — the baseline world the campaigns perturb);
//! 3. campaign delivery: per-install worker sampling (archetypes,
//!    device farms in /24 bursts, emulators/datacenter bots),
//!    engagement per conversion goal, postbacks and payout settlement;
//! 4. the Play-side enforcement sweep;
//! 5. on crawl days: milk every affiliate app from every vantage
//!    point through the MITM proxy, then crawl profiles of every
//!    discovered app (plus baseline) and the three top charts;
//! 6. campaigns past their end day are withdrawn.
//!
//! At the end the crawler downloads APKs of every observed app for the
//! Figure 6 static analysis.
//!
//! ## Crash safety
//!
//! The loop is split into *sim* steps (1–4, 6: in-memory, consuming
//! only the `"wildsim"` RNG) and *measurement* steps (5: network I/O
//! on independent seed lineages, world-read-only). That split is what
//! makes [`World::run_wild_study_with`] checkpointable: a
//! [`CheckpointPolicy`] durably snapshots the measurement-side state
//! at day boundaries, and a resume replays the cheap sim steps up to
//! the snapshot day — regenerating world, RNG and clock bit-exactly —
//! before restoring the dataset and crawler state from disk. The
//! replayed sim state is byte-compared against the snapshot's sim
//! section; any divergence refuses the resume instead of silently
//! producing different numbers.

use crate::aggregates::ReportAggregates;
use crate::chaos::CrashPlan;
use crate::checkpoint::{self, CheckpointStats, Snapshot};
use crate::world::{OrganicProfile, World};
use iiscope_attribution::{Conversion, ConversionGoal, Postback};
use iiscope_devices::behavior::plan_for;
use iiscope_devices::{IipBehaviorProfile, WorkerKind};
use iiscope_monitor::{Crawler, Dataset, RateBook, UiFuzzer};
use iiscope_playstore::{InstallSignals, InstallSource};
use iiscope_types::rng::chance;
use iiscope_types::{
    chaosstats, shard_of, wirestats, AppId, CampaignId, DeviceId, Error, IipId, Result,
    SimDuration, SimTime, Sym, Usd,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `n_jobs` indexed jobs across `workers` scoped threads and
/// returns the results **in job order** — the caller merges them as if
/// they had run sequentially, which is what keeps the parallel study
/// bit-identical to the `parallelism = 1` path. Workers pull jobs from
/// an atomic cursor (work stealing), so scheduling is nondeterministic
/// but invisible: each result lands in its job's slot.
///
/// A job that panics does not take the study down with an opaque
/// thread abort: the panic is caught at the job boundary and surfaced
/// in that job's slot as [`Error::WorkerPanic`], the worker thread
/// survives, and every other job still runs. The caller decides
/// whether a panicked slot is fatal.
///
/// `workers <= 1` (or a single job) runs inline on the calling thread
/// with the same panic containment.
pub(crate) fn fan_out<T, F>(workers: usize, n_jobs: usize, job: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = |j: usize| -> Result<T> {
        catch_unwind(AssertUnwindSafe(|| job(j)))
            .map_err(|payload| Error::WorkerPanic(format!("job {j}: {}", panic_text(&payload))))
    };
    if workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(run).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Mutex<Option<Result<T>>>> = Vec::with_capacity(n_jobs);
    slots.resize_with(n_jobs, || Mutex::new(None));
    crossbeam::thread::scope(|s| {
        for _ in 0..pool_size(workers, n_jobs) {
            s.spawn(|_| loop {
                let j = cursor.fetch_add(1, Ordering::Relaxed);
                if j >= n_jobs {
                    break;
                }
                *slots[j].lock() = Some(run(j));
            });
        }
    })
    .expect("wild-study worker scope");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|| Err(Error::WorkerPanic("job slot never filled".into())))
        })
        .collect()
}

/// Sizes a fan-out's worker pool: never more threads than jobs (extra
/// threads would spin up, find the cursor exhausted, and die — pure
/// overhead), never zero.
pub(crate) fn pool_size(workers: usize, n_jobs: usize) -> usize {
    workers.max(1).min(n_jobs.max(1))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Checkpointing policy for a wild-study run.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory snapshots are durably written into (created on the
    /// first write).
    pub dir: PathBuf,
    /// Snapshot every N completed sim days (clamped to at least 1).
    pub every_days: u64,
}

/// Options for [`World::run_wild_study_with`]. The default runs the
/// study straight through with no checkpointing, exactly like
/// [`World::run_wild_study`].
#[derive(Default)]
pub struct WildRunOptions {
    /// Write durable snapshots on this policy.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from a previously loaded (and CRC-validated) snapshot
    /// instead of starting at day 0.
    pub resume: Option<Snapshot>,
    /// Deterministic kill-point injection: die at a given sim day.
    pub crash: Option<CrashPlan>,
}

/// Everything the wild study produced.
pub struct WildArtifacts {
    /// The longitudinal dataset (offers, profiles, charts).
    pub dataset: Dataset,
    /// Downloaded APKs by package (observed advertised apps +
    /// baseline); refcounted views of the download responses.
    pub apks: BTreeMap<String, bytes::Bytes>,
    /// Total installs removed by enforcement over the window.
    pub enforcement_removed: u64,
    /// Star ratings recorded by incentivized RateApp completions
    /// (extension; always 0 unless `WorldConfig::rating_offers`).
    pub incentivized_ratings: u64,
    /// Incentivized (tagged) installs delivered over the window — the
    /// event count `--scale` multiplies and the numerator of the
    /// devices/sec throughput figure.
    pub tagged_installs: u64,
    /// Raw offer observations count (pre-dedup).
    pub offer_observations: usize,
    /// Checkpoint write/replay accounting for this run (zeroed when
    /// checkpointing was off).
    pub checkpoints: CheckpointStats,
    /// Streaming per-day aggregates for the hot report tables, folded
    /// while each day's rows were still resident. Always covers the
    /// final dataset; the incremental report path renders from this.
    pub aggregates: ReportAggregates,
}

struct OfferRt {
    app_id: AppId,
    iip: IipId,
    campaign_id: CampaignId,
    tag: String,
    goal: ConversionGoal,
    start_day: u64,
    end_day: u64,
    cap: u64,
    completions: u64,
    installs_per_day: f64,
    carry: f64,
    /// Companion (non-incentivized) installs per day; recorded as
    /// organic bulk so enforcement never touches them.
    companion_per_day: f64,
    companion_carry: f64,
    farm_left: u32,
    farm_block: u32,
    device_counter: u64,
    ended: bool,
}

/// One deferred world mutation emitted by a shard's sim step. Shard
/// sims draw only from their private RNG streams and never touch the
/// store or platforms; their op buffers are applied in shard-index
/// (then emission) order afterwards, so the world sees one
/// deterministic mutation sequence no matter how many OS workers ran
/// the shard sims. With one shard the emission order is exactly the
/// legacy inline call order, which is what keeps `shards = 1`
/// bit-identical to the historical day loop.
enum Op {
    OrganicInstalls {
        app: AppId,
        at: SimTime,
        n: u64,
    },
    EngagementBulk {
        app: AppId,
        at: SimTime,
        sessions: u64,
        secs: u64,
    },
    RevenueBulk {
        app: AppId,
        at: SimTime,
        buyers: u64,
        amount: Usd,
    },
    RatingsBulk {
        app: AppId,
        n: u64,
        stars_total: u64,
    },
    Install {
        app: AppId,
        at: SimTime,
        signals: InstallSignals,
        tag: String,
    },
    Session {
        app: AppId,
        at: SimTime,
        secs: u64,
    },
    Registration {
        app: AppId,
        at: SimTime,
    },
    Purchase {
        app: AppId,
        at: SimTime,
        amount: Usd,
    },
    Rating {
        app: AppId,
        stars: u8,
    },
    Postback {
        iip: IipId,
        pb: Postback,
    },
}

/// One population/state shard of the day loop: a private RNG stream
/// and the offer runtimes assigned to it (by package symbol, via
/// [`shard_of`]). Shard 0 of a single-shard world carries the legacy
/// `"wildsim"` stream.
struct ShardSim {
    rng: StdRng,
    active: Vec<OfferRt>,
}

/// The mutable state the day loop carries: the sim side (per-shard
/// RNGs and offer runtimes, schedule, counters) that a resume
/// regenerates by replay, and the measurement side (dataset, chart
/// crawler) that a resume restores from the snapshot.
struct SimState {
    dataset: Dataset,
    crawler: Crawler,
    aggregates: ReportAggregates,
    pending: BTreeMap<u64, Vec<(usize, usize, usize)>>,
    shards: Vec<ShardSim>,
    enforcement_removed: u64,
    incentivized_ratings: u64,
    tagged_installs: u64,
    device_base: u64,
}

impl World {
    /// Runs the full wild study and returns its artifacts.
    pub fn run_wild_study(&self) -> Result<WildArtifacts> {
        self.run_wild_study_with(WildRunOptions::default())
    }

    /// Runs the wild study with checkpointing, resume and kill-point
    /// options. See the module docs for the sim/measurement split that
    /// makes the resume path byte-identical to a straight-through run.
    pub fn run_wild_study_with(&self, mut opts: WildRunOptions) -> Result<WildArtifacts> {
        let mut stats = CheckpointStats::default();
        let profiles: BTreeMap<IipId, IipBehaviorProfile> = IipId::ALL
            .into_iter()
            .map(|iip| (iip, IipBehaviorProfile::for_iip(iip)))
            .collect();
        let fuzzer = UiFuzzer::new(iiscope_monitor::FuzzerConfig {
            max_scroll_pages: self.cfg.fuzzer_pages,
        });
        let organic = self.organic_by_shard();
        // Rate book for the per-day aggregate fold — same catalog the
        // batch tables build theirs from, so fold-time payout
        // normalization is bit-identical to the oracle's.
        let book = RateBook::from_catalog(&self.affiliate_apps);

        let (mut st, start_day) = match opts.resume.take() {
            Some(mut snap) => {
                let snap_aggs = snap.aggregates.take();
                snap.check_compatible(&self.cfg)
                    .map_err(Error::InvalidState)?;
                let t = std::time::Instant::now();
                let mut st = self.replay_sim_to(snap.day, &profiles, &organic)?;
                let replayed = self.encode_sim(&st, snap.day);
                if replayed != snap.sim_bytes {
                    return Err(Error::InvalidState(format!(
                        "resume verification failed: replayed sim state for day {} \
                         diverges from the snapshot's sim section ({} vs {} bytes); \
                         refusing to resume",
                        snap.day,
                        replayed.len(),
                        snap.sim_bytes.len()
                    )));
                }
                st.dataset = Dataset::from_parts_with_spill(
                    snap.pkg_syms,
                    snap.desc_syms,
                    &snap.offers_spill,
                    snap.offers,
                    snap.profiles,
                    &snap.charts_spill,
                    snap.charts,
                )?;
                st.crawler.restore(&snap.crawler);
                // v3 snapshots carry the aggregate state verbatim; a
                // v2 snapshot (no AGGS section) catches up with one
                // fold over the restored dataset — the fold is a pure
                // function of arrival order, so the refolded state is
                // byte-identical to the day-by-day original.
                st.aggregates = snap_aggs.unwrap_or_default();
                if !st.aggregates.covers(&st.dataset) {
                    st.aggregates.fold_day(&st.dataset, &book);
                }
                chaosstats::restore(&snap.chaos_counters);
                wirestats::restore(&snap.wire_counters);
                stats.resumed_from_day = Some(snap.day);
                stats.replay_secs = t.elapsed().as_secs_f64();
                (st, snap.day + 1)
            }
            None => (self.fresh_sim_state(), 0),
        };

        // Out-of-core budget for the dataset's spillable columns.
        // Byte-invariant (any budget yields identical results), so it
        // applies identically to fresh and resumed runs; resume keeps
        // appending to the spill file the snapshot references.
        if self.cfg.memory_budget.is_some() {
            let dir = self.resolve_spill_dir(&opts);
            st.dataset.set_memory_budget(
                self.cfg.memory_budget,
                &dir,
                &format!("iiscope-{}", self.cfg.seed),
            );
        }

        for day in start_day..=self.cfg.monitoring_days {
            if let Some(crash) = &opts.crash {
                if day == crash.kill_day {
                    return Err(Error::Interrupted(format!(
                        "simulated process death at sim day {day}"
                    )));
                }
            }
            let t0 = self.study_start() + SimDuration::from_days(day);
            self.net.clock().advance_to(t0);
            // The day's mutations get their own cache version: anything
            // a concurrent server cached overnight must not survive
            // into the mutation window, and anything cached *during*
            // the window is dropped by the bump below once the day's
            // state settles.
            self.day_version.bump();
            self.sim_day(&mut st, day, t0, &profiles, &organic)?;
            if day % self.cfg.crawl_cadence_days == 0 {
                self.measure_day(&mut st, t0, &fuzzer)?;
            }
            // Fold the day's ingest delta into the report aggregates
            // while the new rows are still resident (before the spill
            // LRU can evict them), and before the snapshot below so
            // the aggregate state rides the same durability boundary.
            st.aggregates.fold_day(&st.dataset, &book);
            self.day_version.bump();
            if let Some(cp) = &opts.checkpoint {
                if day % cp.every_days.max(1) == 0 {
                    let t = std::time::Instant::now();
                    let bytes = self.snapshot_at(&st, day).encode();
                    checkpoint::write_durable(&cp.dir, day, &bytes).map_err(|e| {
                        Error::InvalidState(format!(
                            "checkpoint write to {} failed: {e}",
                            cp.dir.display()
                        ))
                    })?;
                    stats.snapshots_written += 1;
                    stats.last_bytes = bytes.len() as u64;
                    stats.total_bytes += bytes.len() as u64;
                    stats.total_write_secs += t.elapsed().as_secs_f64();
                }
            }
        }

        // APK downloads for the Figure 6 analysis.
        let mut apks = BTreeMap::new();
        let apk_plan: Vec<&str> = st
            .dataset
            .advertised_packages()
            .into_iter()
            .chain(self.plan.baseline.iter().map(|b| b.package.as_str()))
            .collect();
        let fetched = fan_out(self.cfg.parallelism, apk_plan.len(), |j| {
            self.crawler_indexed(j as u64).apk(apk_plan[j])
        });
        let fetched: Vec<_> = apk_plan
            .iter()
            .zip(fetched)
            .map(|(pkg, slot)| (pkg.to_string(), slot))
            .collect();
        for (pkg, slot) in fetched {
            match slot? {
                Ok(Some(bytes)) => {
                    apks.insert(pkg, bytes);
                }
                Ok(None) => {}
                Err(_) => chaosstats::add_crawls_abandoned(1),
            }
        }

        Ok(WildArtifacts {
            offer_observations: st.dataset.offers().len(),
            dataset: st.dataset,
            apks,
            enforcement_removed: st.enforcement_removed,
            incentivized_ratings: st.incentivized_ratings,
            tagged_installs: st.tagged_installs,
            checkpoints: stats,
            aggregates: st.aggregates,
        })
    }

    /// Where spill files live: the configured directory, else a
    /// `spill/` subdirectory of the checkpoint directory (so snapshot
    /// references and spill data share durability), else a per-process
    /// directory under the system temp dir.
    fn resolve_spill_dir(&self, opts: &WildRunOptions) -> PathBuf {
        if let Some(d) = &self.cfg.spill_dir {
            return d.clone();
        }
        if let Some(cp) = &opts.checkpoint {
            return cp.dir.join("spill");
        }
        std::env::temp_dir().join(format!("iiscope-spill-{}", std::process::id()))
    }

    /// Partition of the organic catalog across sim shards by package
    /// symbol, in `AppId` order within each shard (the legacy
    /// iteration order). Pure function of the world — computed once
    /// per run.
    fn organic_by_shard(&self) -> Vec<Vec<(AppId, OrganicProfile)>> {
        let n = self.cfg.shards.max(1);
        let mut sym_of: BTreeMap<AppId, Sym> = BTreeMap::new();
        let mut index = |pkg: &str| {
            if let Some(sym) = self.syms.get(pkg) {
                if let Some(id) = self.app_ids.get(sym) {
                    sym_of.insert(*id, sym);
                }
            }
        };
        for app in &self.plan.apps {
            index(app.package.as_str());
        }
        for b in &self.plan.baseline {
            index(b.package.as_str());
        }
        let mut out = vec![Vec::new(); n];
        for (app_id, org) in &self.organic {
            let shard = sym_of.get(app_id).map_or(0, |s| shard_of(*s, n));
            out[shard].push((*app_id, *org));
        }
        out
    }

    /// Day-0 state of the day loop: the planned schedule keyed by
    /// start day, an empty dataset seeded from the world's interner
    /// (every planned package keeps its generation-order symbol, so
    /// numbering is independent of `parallelism`), and the `"wildsim"`
    /// RNG at the start of its stream.
    fn fresh_sim_state(&self) -> SimState {
        let mut pending: BTreeMap<u64, Vec<(usize, usize, usize)>> = BTreeMap::new();
        for (ai, app) in self.plan.apps.iter().enumerate() {
            for (ci, c) in app.campaigns.iter().enumerate() {
                for (oi, _) in c.offers.iter().enumerate() {
                    pending.entry(c.start_day).or_default().push((ai, ci, oi));
                }
            }
        }
        let wild = self.seed.fork("wildsim");
        let shards = (0..self.cfg.shards.max(1))
            .map(|k| ShardSim {
                // Shard 0 carries the legacy `"wildsim"` stream, so a
                // single-shard world replays the historical RNG
                // sequence bit-for-bit.
                rng: if k == 0 {
                    wild.rng()
                } else {
                    wild.fork_idx("shard", k as u64).rng()
                },
                active: Vec::new(),
            })
            .collect();
        SimState {
            dataset: Dataset::with_interner(self.syms.clone()),
            crawler: self.crawler(),
            aggregates: ReportAggregates::new(),
            pending,
            shards,
            enforcement_removed: 0,
            incentivized_ratings: 0,
            tagged_installs: 0,
            device_base: 10_000_000,
        }
    }

    /// Replays the sim steps for days `0..=day` on a fresh state,
    /// advancing the shared clock exactly as the original run did.
    /// Measurement steps are skipped: they read the world and write
    /// the dataset, never the sim state, and their seed lineages are
    /// independent of the `"wildsim"` stream.
    fn replay_sim_to(
        &self,
        day: u64,
        profiles: &BTreeMap<IipId, IipBehaviorProfile>,
        organic: &[Vec<(AppId, OrganicProfile)>],
    ) -> Result<SimState> {
        let mut st = self.fresh_sim_state();
        for d in 0..=day {
            let t0 = self.study_start() + SimDuration::from_days(d);
            self.net.clock().advance_to(t0);
            self.sim_day(&mut st, d, t0, profiles, organic)?;
        }
        Ok(st)
    }

    /// Serializes the sim side of `st` (and the shared clock) into a
    /// canonical byte string. Written into every snapshot and compared
    /// byte-for-byte against the replayed state on resume — it is an
    /// equality oracle, never decoded.
    fn encode_sim(&self, st: &SimState, day: u64) -> Vec<u8> {
        let mut e = iiscope_types::frame::Enc::new();
        e.u64(day);
        e.u64(st.shards.len() as u64);
        for shard in &st.shards {
            let rng = shard.rng.state();
            for k in rng.key {
                e.u32(k);
            }
            e.u64(rng.counter).u64(rng.index as u64);
            e.u64(shard.active.len() as u64);
            for rt in &shard.active {
                e.u64(rt.app_id.raw())
                    .u8(rt.iip as u8)
                    .u64(rt.campaign_id.raw());
                e.str(&rt.tag);
                e.str(&format!("{:?}", rt.goal));
                e.u64(rt.start_day)
                    .u64(rt.end_day)
                    .u64(rt.cap)
                    .u64(rt.completions);
                e.f64(rt.installs_per_day)
                    .f64(rt.carry)
                    .f64(rt.companion_per_day)
                    .f64(rt.companion_carry);
                e.u32(rt.farm_left).u32(rt.farm_block);
                e.u64(rt.device_counter).bool(rt.ended);
            }
        }
        e.u64(st.device_base)
            .u64(st.enforcement_removed)
            .u64(st.incentivized_ratings)
            .u64(st.tagged_installs);
        e.u64(self.net.clock().now().secs());
        e.u64(st.pending.len() as u64);
        for (d, starts) in &st.pending {
            e.u64(*d).u64(starts.len() as u64);
            for (ai, ci, oi) in starts {
                e.u64(*ai as u64).u64(*ci as u64).u64(*oi as u64);
            }
        }
        e.into_bytes()
    }

    /// Assembles the durable snapshot for a completed day.
    fn snapshot_at(&self, st: &SimState, day: u64) -> Snapshot {
        Snapshot {
            day,
            seed: self.cfg.seed,
            fingerprint: checkpoint::config_fingerprint(&self.cfg),
            sim_bytes: self.encode_sim(st, day),
            crawler: st.crawler.checkpoint(),
            pkg_syms: st.dataset.package_interner().clone(),
            desc_syms: st.dataset.description_interner().clone(),
            offers_spill: st.dataset.offers_spill(),
            offers: st.dataset.offers_suffix(),
            profiles: st.dataset.profiles().to_vec(),
            charts_spill: st.dataset.charts_spill(),
            charts: st.dataset.charts_suffix(),
            aggregates: Some(st.aggregates.clone()),
            chaos_counters: chaosstats::snapshot()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            wire_counters: wirestats::snapshot()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    /// Steps 1–4 and 6 of one day: campaign starts, organic
    /// background, delivery, enforcement, campaign ends. Pure sim —
    /// consumes only the shard RNGs and mutates only `st` and the
    /// world's stores/platforms, deterministically.
    fn sim_day(
        &self,
        st: &mut SimState,
        day: u64,
        t0: SimTime,
        profiles: &BTreeMap<IipId, IipBehaviorProfile>,
        organic: &[Vec<(AppId, OrganicProfile)>],
    ) -> Result<()> {
        let n_shards = st.shards.len();
        let scale = self.cfg.scale.max(1);
        // 1. Campaign starts — sequential: the platform's campaign-id
        //    and tag allocation is order-dependent, so starts stay a
        //    single stream regardless of shard count.
        if let Some(starts) = st.pending.remove(&day) {
            for (ai, ci, oi) in starts {
                let app = &self.plan.apps[ai];
                let c = &app.campaigns[ci];
                let o = &c.offers[oi];
                let dev = self
                    .dev_id(app.package.as_str())
                    .expect("planned app is registered");
                let platform = &self.platforms[&c.iip];
                let cap = o.cap.saturating_mul(scale);
                let (campaign_id, tag) = platform.create_campaign(
                    iiscope_iip::CampaignSpec {
                        developer: dev,
                        package: app.package.clone(),
                        store_url: format!(
                            "https://play.iiscope/store/apps/details?id={}",
                            app.package
                        ),
                        goal: o.goal.clone(),
                        payout: o.payout,
                        cap,
                        countries: o.countries.clone(),
                    },
                    t0,
                )?;
                st.device_base += 100_000 * scale;
                // Companion marketing is campaign-level; attribute
                // it to the campaign's first offer runtime so it is
                // applied exactly once per campaign-day.
                let companion_per_day = if oi == 0 {
                    app.pre_installs as f64 * c.companion_growth / c.duration_days as f64
                        * scale as f64
                } else {
                    0.0
                };
                let shard = self
                    .syms
                    .get(app.package.as_str())
                    .map_or(0, |s| shard_of(s, n_shards));
                st.shards[shard].active.push(OfferRt {
                    app_id: self
                        .app_id(app.package.as_str())
                        .expect("planned app is published"),
                    iip: c.iip,
                    campaign_id,
                    tag,
                    goal: o.goal.clone(),
                    start_day: c.start_day,
                    end_day: c.end_day(),
                    cap,
                    completions: 0,
                    installs_per_day: cap as f64 * 1.15 / c.duration_days as f64,
                    carry: 0.0,
                    companion_per_day,
                    companion_carry: 0.0,
                    farm_left: 0,
                    farm_block: 0,
                    device_counter: st.device_base,
                    ended: false,
                });
            }
        }

        // 2 + 3. Per-shard sim: organic background and campaign
        // delivery, emitted as op buffers. Shard sims never touch the
        // store, so they fan out across the worker pool; applying the
        // buffers in shard-index order afterwards keeps the mutation
        // stream deterministic at any worker count.
        let cells: Vec<Mutex<&mut ShardSim>> = st.shards.iter_mut().map(Mutex::new).collect();
        let outs = fan_out(self.cfg.parallelism, n_shards, |k| {
            let mut shard = cells[k].lock();
            self.shard_sim_day(&mut shard, day, t0, profiles, &organic[k])
        });
        drop(cells);
        let mut buffers = Vec::with_capacity(n_shards);
        for slot in outs {
            let (ops, ratings) = slot?;
            st.incentivized_ratings += ratings;
            buffers.push(ops);
        }
        for ops in buffers {
            for op in ops {
                self.apply_op(st, op)?;
            }
        }

        // 4. Enforcement sweep — once, after every shard's ops landed.
        st.enforcement_removed += self.store.enforcement_sweep(t0);

        // 6 (early). Campaign ends — sequential, shard-index order.
        for shard in st.shards.iter_mut() {
            for rt in shard.active.iter_mut() {
                if !rt.ended && day >= rt.end_day {
                    self.platforms[&rt.iip].end_campaign(rt.campaign_id)?;
                    rt.ended = true;
                }
            }
        }
        Ok(())
    }

    /// One shard's sim step for a day: organic background for its
    /// slice of the catalog, then delivery for its active offers —
    /// drawing only from the shard's own RNG and emitting world
    /// mutations as deferred ops. Returns the ops plus the shard's
    /// incentivized-rating count.
    fn shard_sim_day(
        &self,
        shard: &mut ShardSim,
        day: u64,
        t0: SimTime,
        profiles: &BTreeMap<IipId, IipBehaviorProfile>,
        organic: &[(AppId, OrganicProfile)],
    ) -> (Vec<Op>, u64) {
        let ShardSim { rng, active } = shard;
        let mut ops = Vec::new();
        // 2. Organic background.
        for (app_id, org) in organic {
            let installs = sample_count(org.installs_daily, rng);
            if installs > 0 {
                ops.push(Op::OrganicInstalls {
                    app: *app_id,
                    at: t0,
                    n: installs,
                });
            }
            let sessions = sample_count(org.sessions_daily, rng);
            if sessions > 0 {
                ops.push(Op::EngagementBulk {
                    app: *app_id,
                    at: t0,
                    sessions,
                    secs: sessions * org.session_secs,
                });
            }
            if org.revenue_daily > Usd::ZERO {
                ops.push(Op::RevenueBulk {
                    app: *app_id,
                    at: t0,
                    buyers: (org.revenue_daily.dollars_f64() / 3.0).ceil() as u64,
                    amount: org.revenue_daily,
                });
            }
            let ratings = sample_count(org.ratings_daily, rng);
            if ratings > 0 {
                let total = ((ratings as f64) * org.avg_stars).round() as u64;
                ops.push(Op::RatingsBulk {
                    app: *app_id,
                    n: ratings,
                    stars_total: total.min(ratings * 5),
                });
            }
        }
        // 3. Campaign delivery.
        let mut incentivized = 0;
        for rt in active.iter_mut() {
            if rt.ended || day < rt.start_day || day >= rt.end_day {
                continue;
            }
            let profile = &profiles[&rt.iip];
            incentivized += self.deliver_offer_day(rt, profile, t0, rng, &mut ops);
        }
        (ops, incentivized)
    }

    /// Applies one deferred shard mutation to the live world.
    fn apply_op(&self, st: &mut SimState, op: Op) -> Result<()> {
        match op {
            Op::OrganicInstalls { app, at, n } => self.store.record_organic_installs(app, at, n),
            Op::EngagementBulk {
                app,
                at,
                sessions,
                secs,
            } => self.store.record_engagement_bulk(app, at, sessions, secs),
            Op::RevenueBulk {
                app,
                at,
                buyers,
                amount,
            } => self.store.record_revenue_bulk(app, at, buyers, amount),
            Op::RatingsBulk {
                app,
                n,
                stars_total,
            } => self.store.record_ratings_bulk(app, n, stars_total),
            Op::Install {
                app,
                at,
                signals,
                tag,
            } => {
                self.store
                    .record_install(app, at, signals, &InstallSource::Tagged(tag))?;
                st.tagged_installs += 1;
            }
            Op::Session { app, at, secs } => {
                self.store.record_session(app, at, secs)?;
            }
            Op::Registration { app, at } => {
                self.store.record_registration(app, at)?;
            }
            Op::Purchase { app, at, amount } => {
                self.store.record_purchase(app, at, amount)?;
            }
            Op::Rating { app, stars } => self.store.record_rating(app, stars),
            Op::Postback { iip, pb } => {
                self.platforms[&iip].process_postback(&pb)?;
            }
        }
        Ok(())
    }

    /// Step 5 of a crawl day: milk every (affiliate × vantage), crawl
    /// profiles of every discovered app plus baseline, crawl the top
    /// charts. Every crawl-day unit is independent, so at
    /// `parallelism > 1` the jobs fan out over scoped worker threads.
    /// Results are merged in plan order, and each milk run captures its
    /// own intercepts via the log tap, so the dataset ingests the
    /// exact stream the sequential path produces.
    fn measure_day(&self, st: &mut SimState, t0: SimTime, fuzzer: &UiFuzzer) -> Result<()> {
        let workers = self.cfg.parallelism;
        let milk_jobs: Vec<(usize, usize)> = (0..self.affiliate_apps.len())
            .flat_map(|a| (0..self.cfg.milk_countries.len()).map(move |c| (a, c)))
            .collect();
        let milked = fan_out(workers, milk_jobs.len(), |j| {
            let (a, c) = milk_jobs[j];
            self.infra
                .milk(&self.affiliate_apps[a], self.cfg.milk_countries[c], fuzzer)
        });
        for slot in milked {
            // A milking run lost to the network (retries exhausted,
            // MITM path down, wall stalled) is a missed observation
            // round for that app × vantage, not a dead study. Anything
            // else — a parser bug, a worker panic, a state-machine
            // violation — still aborts.
            let offers = match slot? {
                Ok(offers) => offers,
                Err(Error::Network(_)) => {
                    chaosstats::add_milks_abandoned(1);
                    continue;
                }
                Err(e) => return Err(e),
            };
            st.dataset.add_offers(offers);
        }
        // The dataset's advertised index *is* the discovery set (every
        // milked offer lands there), in the same lexicographic order
        // the old side-channel set kept — the crawl plan, and with it
        // the per-job RNG forks, are unchanged.
        let crawled = {
            let crawl_plan: Vec<&str> = st
                .dataset
                .advertised_packages()
                .into_iter()
                .chain(self.plan.baseline.iter().map(|b| b.package.as_str()))
                .collect();
            fan_out(workers, crawl_plan.len(), |j| {
                // Each job gets its own crawler (connection + RNG
                // fork); the snapshots it parses don't depend on
                // either, so per-job clients leave the data unchanged.
                self.crawler_indexed(j as u64).profile(crawl_plan[j], t0)
            })
        };
        for slot in crawled {
            // A failed crawl is a missing data point, not a dead study
            // (the paper's crawler had outages too).
            match slot? {
                Ok(Some(snap)) => st.dataset.add_profile(snap),
                Ok(None) => {}
                Err(_) => chaosstats::add_crawls_abandoned(1),
            }
        }
        for kind in iiscope_playstore::ChartKind::ALL {
            match st.crawler.chart(kind, self.cfg.chart_size, t0) {
                Ok(snap) => st.dataset.add_chart(snap),
                Err(_) => chaosstats::add_crawls_abandoned(1),
            }
        }
        Ok(())
    }

    fn deliver_offer_day(
        &self,
        rt: &mut OfferRt,
        profile: &IipBehaviorProfile,
        t0: SimTime,
        rng: &mut impl Rng,
        ops: &mut Vec<Op>,
    ) -> u64 {
        let mut ratings = 0;
        // Companion non-incentivized installs (organic bulk).
        rt.companion_carry += rt.companion_per_day;
        let companion = rt.companion_carry as u64;
        rt.companion_carry -= companion as f64;
        if companion > 0 {
            ops.push(Op::OrganicInstalls {
                app: rt.app_id,
                at: t0,
                n: companion,
            });
        }
        rt.carry += rt.installs_per_day;
        let n = rt.carry as u64;
        rt.carry -= n as f64;
        // Farm deliveries arrive in whole-farm bursts: the kind mix's
        // farm share is an *install* share, so burst starts are drawn
        // at share/mean-burst and then the burst drains install by
        // install (producing the /24 clusters §3.2 observed and §5.2's
        // lockstep detector keys on).
        let farm_share = profile
            .kind_weights
            .iter()
            .find(|(k, _)| *k == WorkerKind::FarmOperator)
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        let burst_start_p = farm_share / 17.0;
        for _ in 0..n {
            let t = t0 + SimDuration::from_secs(rng.gen_range(0..86_400));
            let kind = if rt.farm_left > 0 || chance(rng, burst_start_p) {
                WorkerKind::FarmOperator
            } else {
                // Re-draw among the non-farm kinds.
                let mut kind = profile.sample_kind(rng);
                while kind == WorkerKind::FarmOperator {
                    kind = profile.sample_kind(rng);
                }
                kind
            };
            let signals = self.sample_signals(rt, kind, rng);
            ops.push(Op::Install {
                app: rt.app_id,
                at: t,
                signals,
                tag: rt.tag.clone(),
            });
            let plan = plan_for(profile, kind, &rt.goal, rng);
            if plan.opens_app {
                ratings += self.record_goal_engagement(rt, &plan, t, rng, ops);
            }
            if plan.completes && rt.completions < rt.cap {
                rt.completions += 1;
                rt.device_counter += 1;
                let pb = Postback {
                    conversion: Conversion {
                        tag: rt.tag.clone(),
                        device: DeviceId(rt.device_counter),
                        at: t,
                        fraud_flag: signals.is_suspicious(),
                    },
                };
                ops.push(Op::Postback { iip: rt.iip, pb });
            }
        }
        ratings
    }

    fn sample_signals(
        &self,
        rt: &mut OfferRt,
        kind: WorkerKind,
        rng: &mut impl Rng,
    ) -> InstallSignals {
        match kind {
            WorkerKind::FarmOperator => {
                if rt.farm_left == 0 {
                    rt.farm_block = rng.gen::<u32>() | 0x8000_0000;
                    rt.farm_left = rng.gen_range(10..=25);
                }
                rt.farm_left -= 1;
                InstallSignals {
                    emulator: false,
                    rooted: chance(rng, 0.9),
                    datacenter_asn: false,
                    block24: rt.farm_block,
                }
            }
            WorkerKind::BotOperator => InstallSignals {
                emulator: chance(rng, 0.5),
                rooted: true,
                datacenter_asn: chance(rng, 0.5),
                block24: rng.gen::<u32>() & 0x7FFF_FFFF,
            },
            _ => InstallSignals {
                emulator: false,
                rooted: chance(rng, 0.08),
                datacenter_asn: false,
                block24: rng.gen::<u32>() & 0x7FFF_FFFF,
            },
        }
    }

    fn record_goal_engagement(
        &self,
        rt: &OfferRt,
        plan: &iiscope_devices::ExecutionPlan,
        t: SimTime,
        rng: &mut impl Rng,
        ops: &mut Vec<Op>,
    ) -> u64 {
        let app = rt.app_id;
        if !plan.completes {
            // Opened, poked around, left.
            ops.push(Op::Session {
                app,
                at: t,
                secs: rng.gen_range(20..120),
            });
            return 0;
        }
        match &rt.goal {
            ConversionGoal::InstallAndOpen => {
                ops.push(Op::Session {
                    app,
                    at: t,
                    secs: rng.gen_range(30..120),
                });
            }
            ConversionGoal::Register | ConversionGoal::AllOf(_) => {
                // Paid registrations churn: a fraction are throwaway
                // accounts the store's engagement pipeline discounts.
                if chance(rng, 0.6) {
                    ops.push(Op::Registration { app, at: t });
                }
                ops.push(Op::Session {
                    app,
                    at: t,
                    secs: plan.work_secs.clamp(60, 450),
                });
            }
            ConversionGoal::ReachLevel(_)
            | ConversionGoal::SessionTime(_)
            | ConversionGoal::CompleteSubOffers(_) => {
                ops.push(Op::Session {
                    app,
                    at: t,
                    secs: plan.work_secs.clamp(120, 1_200),
                });
                if chance(rng, 0.15) {
                    ops.push(Op::Session {
                        app,
                        at: t,
                        secs: rng.gen_range(120..600),
                    });
                }
            }
            ConversionGoal::Purchase(min) => {
                let amount = *min + Usd::from_cents(rng.gen_range(0..200));
                ops.push(Op::Purchase { app, at: t, amount });
                ops.push(Op::Session {
                    app,
                    at: t,
                    secs: plan.work_secs.clamp(120, 600),
                });
            }
            ConversionGoal::RateApp(min_stars) => {
                // Paid raters leave the minimum the offer demands, or
                // five stars — never less.
                let stars = if chance(rng, 0.6) { 5 } else { *min_stars };
                ops.push(Op::Rating { app, stars });
                ops.push(Op::Session {
                    app,
                    at: t,
                    secs: rng.gen_range(30..150),
                });
                return 1;
            }
        }
        0
    }
}

fn sample_count(rate: f64, rng: &mut impl Rng) -> u64 {
    // Poisson-ish: integer part plus Bernoulli remainder, with ±20%
    // day-to-day jitter.
    let jittered = rate * (0.8 + 0.4 * rng.gen::<f64>());
    let base = jittered.floor() as u64;
    base + u64::from(chance(rng, jittered.fract()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{World, WorldConfig};

    #[test]
    fn small_wild_study_produces_a_coherent_dataset() {
        let world = World::build(WorldConfig::small(21)).unwrap();
        let artifacts = world.run_wild_study().unwrap();
        let ds = &artifacts.dataset;

        // Most planned apps are discovered through milking.
        let advertised = ds.advertised_packages();
        let discovery_rate = advertised.len() as f64 / world.plan.apps.len() as f64;
        assert!(
            discovery_rate > 0.8,
            "discovered {} of {}",
            advertised.len(),
            world.plan.apps.len()
        );

        // Offers were observed repeatedly across rounds; dedup works.
        assert!(ds.unique_offers().len() < ds.offers().len());
        assert!(!ds.unique_descriptions().is_empty());

        // Profiles exist for baseline and advertised apps, multiple
        // crawl days each.
        let some_pkg = advertised.iter().next().unwrap().to_string();
        assert!(ds.profile_series(&some_pkg).len() >= 2);
        let b = world.plan.baseline[0].package.as_str();
        assert!(ds.profile_series(b).len() >= 2);

        // Charts were crawled and are populated.
        assert!(!ds.chart_days().is_empty());
        assert!(ds.charts().any(|c| !c.entries.is_empty()));

        // APKs downloaded for observed + baseline apps.
        assert!(artifacts.apks.len() >= advertised.len());

        // Popular apps accumulate public star ratings over the window.
        let rated = ds
            .profiles()
            .iter()
            .filter(|p| p.rating_count > 0 && p.rating >= 1.0 && p.rating <= 5.0)
            .count();
        assert!(rated > 50, "rated profile snapshots: {rated}");

        // Payout settlement actually flowed.
        let gross: iiscope_types::Usd = IipId::ALL
            .into_iter()
            .map(|i| world.platforms[&i].settlement().gross())
            .sum();
        assert!(gross > iiscope_types::Usd::from_dollars(10), "{gross}");
    }

    #[test]
    fn parallel_study_matches_sequential_bit_for_bit() {
        let run = |parallelism: usize| {
            let mut cfg = WorldConfig::small(77);
            cfg.monitoring_days = 8;
            cfg.crawl_cadence_days = 4;
            cfg.advertised_apps = 25;
            cfg.baseline_apps = 10;
            cfg.parallelism = parallelism;
            let world = World::build(cfg).unwrap();
            world.run_wild_study().unwrap()
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.offer_observations, par.offer_observations);
        assert_eq!(seq.enforcement_removed, par.enforcement_removed);
        assert_eq!(
            format!("{:?}", seq.dataset.offers().collect::<Vec<_>>()),
            format!("{:?}", par.dataset.offers().collect::<Vec<_>>()),
            "raw offer stream must be identical"
        );
        assert_eq!(
            format!("{:?}", seq.dataset.profiles()),
            format!("{:?}", par.dataset.profiles()),
        );
        assert_eq!(seq.apks, par.apks);
    }

    #[test]
    fn wild_study_is_deterministic() {
        let run = |seed: u64| {
            let world = World::build(WorldConfig::small(seed)).unwrap();
            let a = world.run_wild_study().unwrap();
            (
                a.dataset.offers().len(),
                a.dataset.unique_offers().len(),
                a.enforcement_removed,
            )
        };
        assert_eq!(run(33), run(33));
    }

    #[test]
    fn pool_size_never_exceeds_job_count() {
        // Regression: the pool used to spawn `workers` threads even
        // when there were fewer jobs, so a 16-worker config paid 15
        // thread spawns to run a single job.
        assert_eq!(pool_size(16, 1), 1);
        assert_eq!(pool_size(16, 3), 3);
        assert_eq!(pool_size(4, 100), 4);
        assert_eq!(pool_size(0, 5), 1, "zero workers still runs inline");
        assert_eq!(pool_size(8, 0), 1, "zero jobs never yields an empty pool");
    }

    #[test]
    fn zero_job_fan_out_returns_empty_without_a_pool() {
        // Regression: zero jobs must take the inline path — no worker
        // pool, no job closure invocations, just an empty Vec.
        let calls = AtomicUsize::new(0);
        let results: Vec<Result<u64>> = fan_out(8, 0, |j| {
            calls.fetch_add(1, Ordering::SeqCst);
            j as u64
        });
        assert!(results.is_empty());
        assert_eq!(calls.load(Ordering::SeqCst), 0, "job ran despite zero jobs");
    }

    #[test]
    fn fan_out_surfaces_worker_panics_as_errors() {
        for workers in [1, 4] {
            let results = fan_out(workers, 6, |j| {
                if j == 3 {
                    panic!("job {j} exploded");
                }
                j * 10
            });
            assert_eq!(results.len(), 6);
            for (j, slot) in results.iter().enumerate() {
                if j == 3 {
                    match slot {
                        Err(Error::WorkerPanic(msg)) => {
                            assert!(msg.contains("job 3"), "panic message: {msg}")
                        }
                        other => panic!("expected WorkerPanic, got {other:?}"),
                    }
                } else {
                    assert_eq!(*slot.as_ref().unwrap(), j * 10, "healthy job survived");
                }
            }
        }
    }
}
