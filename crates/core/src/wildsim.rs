//! The §4 longitudinal study: run every planned campaign against the
//! live world while the monitoring rig milks offer walls and crawls
//! the Play Store on the paper's cadence.
//!
//! Day loop:
//!
//! 1. start the campaigns scheduled for the day (platform escrow,
//!    offers appear on walls);
//! 2. organic background activity for every app (installs, sessions,
//!    revenue — the baseline world the campaigns perturb);
//! 3. campaign delivery: per-install worker sampling (archetypes,
//!    device farms in /24 bursts, emulators/datacenter bots),
//!    engagement per conversion goal, postbacks and payout settlement;
//! 4. the Play-side enforcement sweep;
//! 5. on crawl days: milk every affiliate app from every vantage
//!    point through the MITM proxy, then crawl profiles of every
//!    discovered app (plus baseline) and the three top charts;
//! 6. campaigns past their end day are withdrawn.
//!
//! At the end the crawler downloads APKs of every observed app for the
//! Figure 6 static analysis.

use crate::world::World;
use iiscope_attribution::{Conversion, ConversionGoal, Postback};
use iiscope_devices::behavior::plan_for;
use iiscope_devices::{IipBehaviorProfile, WorkerKind};
use iiscope_monitor::{Dataset, UiFuzzer};
use iiscope_playstore::{InstallSignals, InstallSource};
use iiscope_types::rng::chance;
use iiscope_types::{
    chaosstats, AppId, CampaignId, DeviceId, Error, IipId, Result, SimDuration, SimTime, Usd,
};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `n_jobs` indexed jobs across `workers` scoped threads and
/// returns the results **in job order** — the caller merges them as if
/// they had run sequentially, which is what keeps the parallel study
/// bit-identical to the `parallelism = 1` path. Workers pull jobs from
/// an atomic cursor (work stealing), so scheduling is nondeterministic
/// but invisible: each result lands in its job's slot.
///
/// `workers <= 1` (or a single job) runs inline on the calling thread.
pub(crate) fn fan_out<T, F>(workers: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || n_jobs <= 1 {
        return (0..n_jobs).map(job).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers.min(n_jobs) {
            s.spawn(|_| loop {
                let j = cursor.fetch_add(1, Ordering::Relaxed);
                if j >= n_jobs {
                    break;
                }
                *slots[j].lock() = Some(job(j));
            });
        }
    })
    .expect("wild-study worker scope");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job ran"))
        .collect()
}

/// Everything the wild study produced.
pub struct WildArtifacts {
    /// The longitudinal dataset (offers, profiles, charts).
    pub dataset: Dataset,
    /// Downloaded APKs by package (observed advertised apps +
    /// baseline); refcounted views of the download responses.
    pub apks: BTreeMap<String, bytes::Bytes>,
    /// Total installs removed by enforcement over the window.
    pub enforcement_removed: u64,
    /// Star ratings recorded by incentivized RateApp completions
    /// (extension; always 0 unless `WorldConfig::rating_offers`).
    pub incentivized_ratings: u64,
    /// Raw offer observations count (pre-dedup).
    pub offer_observations: usize,
}

struct OfferRt {
    app_id: AppId,
    iip: IipId,
    campaign_id: CampaignId,
    tag: String,
    goal: ConversionGoal,
    start_day: u64,
    end_day: u64,
    cap: u64,
    completions: u64,
    installs_per_day: f64,
    carry: f64,
    /// Companion (non-incentivized) installs per day; recorded as
    /// organic bulk so enforcement never touches them.
    companion_per_day: f64,
    companion_carry: f64,
    farm_left: u32,
    farm_block: u32,
    device_counter: u64,
    ended: bool,
}

impl World {
    /// Runs the full wild study and returns its artifacts.
    pub fn run_wild_study(&self) -> Result<WildArtifacts> {
        // Seed the dataset's symbol space from the world's interner:
        // every planned package keeps its generation-order symbol, and
        // ingest (sequential, after the plan-order merge) only appends
        // — so symbol numbering is independent of `parallelism`.
        let mut dataset = Dataset::with_interner(self.syms.clone());
        let mut rng = self.seed.fork("wildsim").rng();
        let fuzzer = UiFuzzer::new(iiscope_monitor::FuzzerConfig {
            max_scroll_pages: self.cfg.fuzzer_pages,
        });
        let mut crawler = self.crawler();
        let profiles: BTreeMap<IipId, IipBehaviorProfile> = IipId::ALL
            .into_iter()
            .map(|iip| (iip, IipBehaviorProfile::for_iip(iip)))
            .collect();

        // Schedule: planned offers keyed by start day.
        let mut pending: BTreeMap<u64, Vec<(usize, usize, usize)>> = BTreeMap::new();
        for (ai, app) in self.plan.apps.iter().enumerate() {
            for (ci, c) in app.campaigns.iter().enumerate() {
                for (oi, _) in c.offers.iter().enumerate() {
                    pending.entry(c.start_day).or_default().push((ai, ci, oi));
                }
            }
        }
        let mut active: Vec<OfferRt> = Vec::new();
        let mut enforcement_removed = 0u64;
        let mut incentivized_ratings = 0u64;
        let mut device_base = 10_000_000u64;

        for day in 0..=self.cfg.monitoring_days {
            let t0 = self.study_start() + SimDuration::from_days(day);
            self.net.clock().advance_to(t0);

            // 1. Campaign starts.
            if let Some(starts) = pending.remove(&day) {
                for (ai, ci, oi) in starts {
                    let app = &self.plan.apps[ai];
                    let c = &app.campaigns[ci];
                    let o = &c.offers[oi];
                    let dev = self
                        .dev_id(app.package.as_str())
                        .expect("planned app is registered");
                    let platform = &self.platforms[&c.iip];
                    let (campaign_id, tag) = platform.create_campaign(
                        iiscope_iip::CampaignSpec {
                            developer: dev,
                            package: app.package.clone(),
                            store_url: format!(
                                "https://play.iiscope/store/apps/details?id={}",
                                app.package
                            ),
                            goal: o.goal.clone(),
                            payout: o.payout,
                            cap: o.cap,
                            countries: o.countries.clone(),
                        },
                        t0,
                    )?;
                    device_base += 100_000;
                    // Companion marketing is campaign-level; attribute
                    // it to the campaign's first offer runtime so it is
                    // applied exactly once per campaign-day.
                    let companion_per_day = if oi == 0 {
                        app.pre_installs as f64 * c.companion_growth / c.duration_days as f64
                    } else {
                        0.0
                    };
                    active.push(OfferRt {
                        app_id: self
                            .app_id(app.package.as_str())
                            .expect("planned app is published"),
                        iip: c.iip,
                        campaign_id,
                        tag,
                        goal: o.goal.clone(),
                        start_day: c.start_day,
                        end_day: c.end_day(),
                        cap: o.cap,
                        completions: 0,
                        installs_per_day: o.cap as f64 * 1.15 / c.duration_days as f64,
                        carry: 0.0,
                        companion_per_day,
                        companion_carry: 0.0,
                        farm_left: 0,
                        farm_block: 0,
                        device_counter: device_base,
                        ended: false,
                    });
                }
            }

            // 2. Organic background.
            for (app_id, organic) in &self.organic {
                let installs = sample_count(organic.installs_daily, &mut rng);
                if installs > 0 {
                    self.store.record_organic_installs(*app_id, t0, installs);
                }
                let sessions = sample_count(organic.sessions_daily, &mut rng);
                if sessions > 0 {
                    self.store.record_engagement_bulk(
                        *app_id,
                        t0,
                        sessions,
                        sessions * organic.session_secs,
                    );
                }
                if organic.revenue_daily > Usd::ZERO {
                    self.store.record_revenue_bulk(
                        *app_id,
                        t0,
                        (organic.revenue_daily.dollars_f64() / 3.0).ceil() as u64,
                        organic.revenue_daily,
                    );
                }
                let ratings = sample_count(organic.ratings_daily, &mut rng);
                if ratings > 0 {
                    let total = ((ratings as f64) * organic.avg_stars).round() as u64;
                    self.store
                        .record_ratings_bulk(*app_id, ratings, total.min(ratings * 5));
                }
            }

            // 3. Campaign delivery.
            for rt in active.iter_mut() {
                if rt.ended || day < rt.start_day || day >= rt.end_day {
                    continue;
                }
                let profile = &profiles[&rt.iip];
                incentivized_ratings += self.deliver_offer_day(rt, profile, t0, &mut rng)?;
            }

            // 4. Enforcement sweep.
            enforcement_removed += self.store.enforcement_sweep(t0);

            // 6 (early). Campaign ends.
            for rt in active.iter_mut() {
                if !rt.ended && day >= rt.end_day {
                    self.platforms[&rt.iip].end_campaign(rt.campaign_id)?;
                    rt.ended = true;
                }
            }

            // 5. Milk + crawl on cadence. Every crawl-day unit — one
            // (affiliate app × vantage country) milking run, one
            // profile crawl — is independent, so at `parallelism > 1`
            // the jobs fan out over scoped worker threads. Results are
            // merged in plan order, and each milk run captures its own
            // intercepts via the log tap, so the dataset ingests the
            // exact stream the sequential path produces.
            if day % self.cfg.crawl_cadence_days == 0 {
                let workers = self.cfg.parallelism;
                let milk_jobs: Vec<(usize, usize)> = (0..self.affiliate_apps.len())
                    .flat_map(|a| (0..self.cfg.milk_countries.len()).map(move |c| (a, c)))
                    .collect();
                let milked = fan_out(workers, milk_jobs.len(), |j| {
                    let (a, c) = milk_jobs[j];
                    self.infra
                        .milk(&self.affiliate_apps[a], self.cfg.milk_countries[c], &fuzzer)
                });
                for offers in milked {
                    // A milking run lost to the network (retries
                    // exhausted, MITM path down, wall stalled) is a
                    // missed observation round for that app × vantage,
                    // not a dead study. Anything else — a parser bug, a
                    // state-machine violation — still aborts.
                    let offers = match offers {
                        Ok(offers) => offers,
                        Err(Error::Network(_)) => {
                            chaosstats::add_milks_abandoned(1);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    dataset.add_offers(offers);
                }
                // The dataset's advertised index *is* the discovery
                // set (every milked offer lands there), in the same
                // lexicographic order the old side-channel set kept —
                // the crawl plan, and with it the per-job RNG forks,
                // are unchanged.
                let crawled = {
                    let crawl_plan: Vec<&str> = dataset
                        .advertised_packages()
                        .into_iter()
                        .chain(self.plan.baseline.iter().map(|b| b.package.as_str()))
                        .collect();
                    fan_out(workers, crawl_plan.len(), |j| {
                        // Each job gets its own crawler (connection +
                        // RNG fork); the snapshots it parses don't
                        // depend on either, so per-job clients leave
                        // the data unchanged.
                        self.crawler_indexed(j as u64).profile(crawl_plan[j], t0)
                    })
                };
                for crawl in crawled {
                    // A failed crawl is a missing data point, not a
                    // dead study (the paper's crawler had outages too).
                    match crawl {
                        Ok(Some(snap)) => dataset.add_profile(snap),
                        Ok(None) => {}
                        Err(_) => chaosstats::add_crawls_abandoned(1),
                    }
                }
                for kind in iiscope_playstore::ChartKind::ALL {
                    match crawler.chart(kind, self.cfg.chart_size, t0) {
                        Ok(snap) => dataset.add_chart(snap),
                        Err(_) => chaosstats::add_crawls_abandoned(1),
                    }
                }
            }
        }

        // APK downloads for the Figure 6 analysis.
        let mut apks = BTreeMap::new();
        let apk_plan: Vec<&str> = dataset
            .advertised_packages()
            .into_iter()
            .chain(self.plan.baseline.iter().map(|b| b.package.as_str()))
            .collect();
        let fetched = fan_out(self.cfg.parallelism, apk_plan.len(), |j| {
            self.crawler_indexed(j as u64).apk(apk_plan[j])
        });
        for (pkg, bytes) in apk_plan.iter().zip(fetched) {
            match bytes {
                Ok(Some(bytes)) => {
                    apks.insert(pkg.to_string(), bytes);
                }
                Ok(None) => {}
                Err(_) => chaosstats::add_crawls_abandoned(1),
            }
        }

        Ok(WildArtifacts {
            offer_observations: dataset.offers().len(),
            dataset,
            apks,
            enforcement_removed,
            incentivized_ratings,
        })
    }

    fn deliver_offer_day(
        &self,
        rt: &mut OfferRt,
        profile: &IipBehaviorProfile,
        t0: SimTime,
        rng: &mut impl Rng,
    ) -> Result<u64> {
        let mut ratings = 0;
        // Companion non-incentivized installs (organic bulk).
        rt.companion_carry += rt.companion_per_day;
        let companion = rt.companion_carry as u64;
        rt.companion_carry -= companion as f64;
        if companion > 0 {
            self.store.record_organic_installs(rt.app_id, t0, companion);
        }
        rt.carry += rt.installs_per_day;
        let n = rt.carry as u64;
        rt.carry -= n as f64;
        // Farm deliveries arrive in whole-farm bursts: the kind mix's
        // farm share is an *install* share, so burst starts are drawn
        // at share/mean-burst and then the burst drains install by
        // install (producing the /24 clusters §3.2 observed and §5.2's
        // lockstep detector keys on).
        let farm_share = profile
            .kind_weights
            .iter()
            .find(|(k, _)| *k == WorkerKind::FarmOperator)
            .map(|(_, w)| *w)
            .unwrap_or(0.0);
        let burst_start_p = farm_share / 17.0;
        for _ in 0..n {
            let t = t0 + SimDuration::from_secs(rng.gen_range(0..86_400));
            let kind = if rt.farm_left > 0 || chance(rng, burst_start_p) {
                WorkerKind::FarmOperator
            } else {
                // Re-draw among the non-farm kinds.
                let mut kind = profile.sample_kind(rng);
                while kind == WorkerKind::FarmOperator {
                    kind = profile.sample_kind(rng);
                }
                kind
            };
            let signals = self.sample_signals(rt, kind, rng);
            self.store.record_install(
                rt.app_id,
                t,
                signals,
                &InstallSource::Tagged(rt.tag.clone()),
            )?;
            let plan = plan_for(profile, kind, &rt.goal, rng);
            if plan.opens_app {
                ratings += self.record_goal_engagement(rt, &plan, t, rng)?;
            }
            if plan.completes && rt.completions < rt.cap {
                rt.completions += 1;
                rt.device_counter += 1;
                let pb = Postback {
                    conversion: Conversion {
                        tag: rt.tag.clone(),
                        device: DeviceId(rt.device_counter),
                        at: t,
                        fraud_flag: signals.is_suspicious(),
                    },
                };
                self.platforms[&rt.iip].process_postback(&pb)?;
            }
        }
        Ok(ratings)
    }

    fn sample_signals(
        &self,
        rt: &mut OfferRt,
        kind: WorkerKind,
        rng: &mut impl Rng,
    ) -> InstallSignals {
        match kind {
            WorkerKind::FarmOperator => {
                if rt.farm_left == 0 {
                    rt.farm_block = rng.gen::<u32>() | 0x8000_0000;
                    rt.farm_left = rng.gen_range(10..=25);
                }
                rt.farm_left -= 1;
                InstallSignals {
                    emulator: false,
                    rooted: chance(rng, 0.9),
                    datacenter_asn: false,
                    block24: rt.farm_block,
                }
            }
            WorkerKind::BotOperator => InstallSignals {
                emulator: chance(rng, 0.5),
                rooted: true,
                datacenter_asn: chance(rng, 0.5),
                block24: rng.gen::<u32>() & 0x7FFF_FFFF,
            },
            _ => InstallSignals {
                emulator: false,
                rooted: chance(rng, 0.08),
                datacenter_asn: false,
                block24: rng.gen::<u32>() & 0x7FFF_FFFF,
            },
        }
    }

    fn record_goal_engagement(
        &self,
        rt: &OfferRt,
        plan: &iiscope_devices::ExecutionPlan,
        t: SimTime,
        rng: &mut impl Rng,
    ) -> Result<u64> {
        let app = rt.app_id;
        if !plan.completes {
            // Opened, poked around, left.
            self.store.record_session(app, t, rng.gen_range(20..120))?;
            return Ok(0);
        }
        match &rt.goal {
            ConversionGoal::InstallAndOpen => {
                self.store.record_session(app, t, rng.gen_range(30..120))?;
            }
            ConversionGoal::Register | ConversionGoal::AllOf(_) => {
                // Paid registrations churn: a fraction are throwaway
                // accounts the store's engagement pipeline discounts.
                if chance(rng, 0.6) {
                    self.store.record_registration(app, t)?;
                }
                self.store
                    .record_session(app, t, plan.work_secs.clamp(60, 450))?;
            }
            ConversionGoal::ReachLevel(_)
            | ConversionGoal::SessionTime(_)
            | ConversionGoal::CompleteSubOffers(_) => {
                self.store
                    .record_session(app, t, plan.work_secs.clamp(120, 1_200))?;
                if chance(rng, 0.15) {
                    self.store.record_session(app, t, rng.gen_range(120..600))?;
                }
            }
            ConversionGoal::Purchase(min) => {
                let amount = *min + Usd::from_cents(rng.gen_range(0..200));
                self.store.record_purchase(app, t, amount)?;
                self.store
                    .record_session(app, t, plan.work_secs.clamp(120, 600))?;
            }
            ConversionGoal::RateApp(min_stars) => {
                // Paid raters leave the minimum the offer demands, or
                // five stars — never less.
                let stars = if chance(rng, 0.6) { 5 } else { *min_stars };
                self.store.record_rating(app, stars);
                self.store.record_session(app, t, rng.gen_range(30..150))?;
                return Ok(1);
            }
        }
        Ok(0)
    }
}

fn sample_count(rate: f64, rng: &mut impl Rng) -> u64 {
    // Poisson-ish: integer part plus Bernoulli remainder, with ±20%
    // day-to-day jitter.
    let jittered = rate * (0.8 + 0.4 * rng.gen::<f64>());
    let base = jittered.floor() as u64;
    base + u64::from(chance(rng, jittered.fract()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{World, WorldConfig};

    #[test]
    fn small_wild_study_produces_a_coherent_dataset() {
        let world = World::build(WorldConfig::small(21)).unwrap();
        let artifacts = world.run_wild_study().unwrap();
        let ds = &artifacts.dataset;

        // Most planned apps are discovered through milking.
        let advertised = ds.advertised_packages();
        let discovery_rate = advertised.len() as f64 / world.plan.apps.len() as f64;
        assert!(
            discovery_rate > 0.8,
            "discovered {} of {}",
            advertised.len(),
            world.plan.apps.len()
        );

        // Offers were observed repeatedly across rounds; dedup works.
        assert!(ds.unique_offers().len() < ds.offers().len());
        assert!(!ds.unique_descriptions().is_empty());

        // Profiles exist for baseline and advertised apps, multiple
        // crawl days each.
        let some_pkg = advertised.iter().next().unwrap().to_string();
        assert!(ds.profile_series(&some_pkg).len() >= 2);
        let b = world.plan.baseline[0].package.as_str();
        assert!(ds.profile_series(b).len() >= 2);

        // Charts were crawled and are populated.
        assert!(!ds.chart_days().is_empty());
        assert!(ds.charts().iter().any(|c| !c.entries.is_empty()));

        // APKs downloaded for observed + baseline apps.
        assert!(artifacts.apks.len() >= advertised.len());

        // Popular apps accumulate public star ratings over the window.
        let rated = ds
            .profiles()
            .iter()
            .filter(|p| p.rating_count > 0 && p.rating >= 1.0 && p.rating <= 5.0)
            .count();
        assert!(rated > 50, "rated profile snapshots: {rated}");

        // Payout settlement actually flowed.
        let gross: iiscope_types::Usd = IipId::ALL
            .into_iter()
            .map(|i| world.platforms[&i].settlement().gross())
            .sum();
        assert!(gross > iiscope_types::Usd::from_dollars(10), "{gross}");
    }

    #[test]
    fn parallel_study_matches_sequential_bit_for_bit() {
        let run = |parallelism: usize| {
            let mut cfg = WorldConfig::small(77);
            cfg.monitoring_days = 8;
            cfg.crawl_cadence_days = 4;
            cfg.advertised_apps = 25;
            cfg.baseline_apps = 10;
            cfg.parallelism = parallelism;
            let world = World::build(cfg).unwrap();
            world.run_wild_study().unwrap()
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.offer_observations, par.offer_observations);
        assert_eq!(seq.enforcement_removed, par.enforcement_removed);
        assert_eq!(
            format!("{:?}", seq.dataset.offers()),
            format!("{:?}", par.dataset.offers()),
            "raw offer stream must be identical"
        );
        assert_eq!(
            format!("{:?}", seq.dataset.profiles()),
            format!("{:?}", par.dataset.profiles()),
        );
        assert_eq!(seq.apks, par.apks);
    }

    #[test]
    fn wild_study_is_deterministic() {
        let run = |seed: u64| {
            let world = World::build(WorldConfig::small(seed)).unwrap();
            let a = world.run_wild_study().unwrap();
            (
                a.dataset.offers().len(),
                a.dataset.unique_offers().len(),
                a.enforcement_removed,
            )
        };
        assert_eq!(run(33), run(33));
    }
}
