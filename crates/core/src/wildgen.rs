//! Generation of the in-the-wild population: advertised apps, their
//! campaign plans, baseline apps and the funding database.
//!
//! All the Table 3/4 shapes enter here as generator parameters:
//!
//! * per-IIP app counts (Table 4: 378 on Fyber … 28 on AdGem);
//! * per-IIP offer-type mixes (RankApp 100% no-activity, AdscendMedia
//!   91% activity, …);
//! * per-IIP median user payouts ($0.02 RankApp … $1.71 AdGem) with
//!   activity > no-activity and purchase ≫ the rest (Table 3's 9×/9×);
//! * per-IIP app popularity and age medians (unvetted: young and tiny;
//!   vetted: old and big);
//! * ad-library loadouts biased by offer type (Figure 6);
//! * Crunchbase match rates and funding probabilities (Table 7).

use iiscope_attribution::ConversionGoal;
use iiscope_types::rng::{chance, log_normal, sample_k, weighted_index};
use iiscope_types::time::study;
use iiscope_types::{Country, Genre, IipId, PackageName, SeedFork, SimTime, Usd};
use rand::Rng;

/// One planned offer within a campaign.
#[derive(Debug, Clone)]
pub struct PlannedOffer {
    /// Completion requirement.
    pub goal: ConversionGoal,
    /// Developer payout per completion (the user sees roughly half).
    pub payout: Usd,
    /// Completions the budget buys.
    pub cap: u64,
    /// Geo targeting (usually worldwide).
    pub countries: Vec<Country>,
}

/// One planned campaign of one app on one IIP.
#[derive(Debug, Clone)]
pub struct PlannedCampaign {
    /// The platform.
    pub iip: IipId,
    /// Start, in days after the study start.
    pub start_day: u64,
    /// Length in days.
    pub duration_days: u64,
    /// The offers it publishes.
    pub offers: Vec<PlannedOffer>,
    /// Whether a third-party marketing organization (not the
    /// developer) created this campaign. §5.1's disclosure responses
    /// suggest exactly this: "they contracted multiple external
    /// marketing organizations to acquire non-incentivized installs"
    /// and one of those organizations quietly bought incentivized ones.
    pub via_marketer: bool,
    /// Companion non-incentivized marketing: the fraction of the app's
    /// install base added as ordinary paid installs over the campaign.
    /// This is the confound the paper itself flags ("some confounding
    /// factors (e.g., non-incentivized installs) may have an effect on
    /// the advertised apps", §4.3) — apps that buy incentivized
    /// campaigns usually buy regular advertising too, and that is what
    /// moves the install bins of big (vetted-platform) apps.
    pub companion_growth: f64,
}

impl PlannedCampaign {
    /// Last day (exclusive) of delivery.
    pub fn end_day(&self) -> u64 {
        self.start_day + self.duration_days
    }
}

/// One planned advertised app.
#[derive(Debug, Clone)]
pub struct PlannedApp {
    /// Package name.
    pub package: PackageName,
    /// Title.
    pub title: String,
    /// Genre.
    pub genre: Genre,
    /// Developer display name.
    pub developer_name: String,
    /// Developer country.
    pub developer_country: Country,
    /// Developer website (drives Crunchbase matching).
    pub developer_website: Option<String>,
    /// Install base before the study.
    pub pre_installs: u64,
    /// Release instant.
    pub released: SimTime,
    /// Campaigns across IIPs.
    pub campaigns: Vec<PlannedCampaign>,
    /// Number of distinct ad libraries in the APK.
    pub ad_library_count: usize,
    /// APK obfuscation level.
    pub obfuscation: f64,
    /// Whether the developer has a Crunchbase company record.
    pub crunchbase_matched: bool,
    /// Whether that company raises funding after the campaign.
    pub raises_funding: bool,
    /// Whether the company is publicly traded.
    pub is_public_company: bool,
    /// Mainstream brand name when this is one of the pinned well-known
    /// apps the paper spotted on offer walls (Apple Music, LinkedIn,
    /// TikTok, Fiverr — §4.2).
    pub brand: Option<&'static str>,
}

impl PlannedApp {
    /// True when any campaign runs on a vetted platform.
    pub fn on_vetted(&self) -> bool {
        self.campaigns.iter().any(|c| c.iip.is_vetted())
    }

    /// True when any campaign runs on an unvetted platform.
    pub fn on_unvetted(&self) -> bool {
        self.campaigns.iter().any(|c| !c.iip.is_vetted())
    }

    /// True when any offer is an activity offer (by goal, ground
    /// truth).
    pub fn has_activity_offer(&self) -> bool {
        self.campaigns.iter().any(|c| {
            c.offers
                .iter()
                .any(|o| !matches!(o.goal, ConversionGoal::InstallAndOpen))
        })
    }

    /// Primary (first-campaign) platform.
    pub fn primary_iip(&self) -> IipId {
        self.campaigns
            .first()
            .map(|c| c.iip)
            .expect("has campaigns")
    }
}

/// One baseline app (no campaigns).
#[derive(Debug, Clone)]
pub struct PlannedBaselineApp {
    /// Package name.
    pub package: PackageName,
    /// Title.
    pub title: String,
    /// Genre.
    pub genre: Genre,
    /// Developer name.
    pub developer_name: String,
    /// Developer country.
    pub developer_country: Country,
    /// Developer website.
    pub developer_website: Option<String>,
    /// Install base (Figure 4 spans <1K to >1000M).
    pub pre_installs: u64,
    /// Release instant.
    pub released: SimTime,
    /// Ad library count.
    pub ad_library_count: usize,
    /// APK obfuscation.
    pub obfuscation: f64,
    /// Crunchbase matched?
    pub crunchbase_matched: bool,
    /// Raises funding during the observation horizon?
    pub raises_funding: bool,
}

/// The full generation output.
#[derive(Debug, Clone)]
pub struct WildPlan {
    /// Advertised apps.
    pub apps: Vec<PlannedApp>,
    /// Baseline apps.
    pub baseline: Vec<PlannedBaselineApp>,
}

/// Table 4 app-count weights per platform.
fn iip_app_weight(iip: IipId) -> f64 {
    match iip {
        IipId::Fyber => 378.0,
        IipId::AyetStudios => 392.0,
        IipId::RankApp => 152.0,
        IipId::OfferToro => 140.0,
        IipId::AdscendMedia => 104.0,
        IipId::AdGem => 28.0,
        IipId::HangMyAds => 27.0,
    }
}

/// Table 4 activity-offer share per platform.
fn activity_share(iip: IipId) -> f64 {
    match iip {
        IipId::RankApp => 0.0,
        IipId::AyetStudios => 0.29,
        IipId::Fyber => 0.76,
        IipId::AdscendMedia => 0.91,
        IipId::AdGem => 0.84,
        IipId::HangMyAds => 0.77,
        IipId::OfferToro => 0.48,
    }
}

/// Table 4 median *user-visible* payout per platform (what the milker
/// normalizes to).
fn median_user_payout(iip: IipId) -> Usd {
    match iip {
        IipId::RankApp => Usd::from_cents(2),
        IipId::AyetStudios => Usd::from_cents(5),
        IipId::OfferToro => Usd::from_cents(9),
        IipId::AdscendMedia => Usd::from_cents(12),
        IipId::Fyber => Usd::from_cents(19),
        IipId::HangMyAds => Usd::from_cents(40),
        IipId::AdGem => Usd::from_cents(171),
    }
}

/// Table 4 median pre-study install base per platform.
fn median_installs(iip: IipId) -> f64 {
    match iip {
        IipId::RankApp => 100.0,
        IipId::AyetStudios => 1_000.0,
        IipId::Fyber => 1_000_000.0,
        IipId::HangMyAds => 1_000_000.0,
        IipId::AdscendMedia => 500_000.0,
        IipId::AdGem => 500_000.0,
        IipId::OfferToro => 500_000.0,
    }
}

/// Table 4 median app age at campaign start (days).
fn median_age_days(iip: IipId) -> f64 {
    match iip {
        IipId::RankApp => 33.0,
        IipId::AyetStudios => 70.0,
        IipId::OfferToro => 557.0,
        IipId::HangMyAds => 699.0,
        IipId::AdscendMedia => 722.0,
        IipId::Fyber => 777.0,
        IipId::AdGem => 854.0,
    }
}

/// The fraction of the developer payout a user sees on a platform
/// (IIP cut, then 25% affiliate cut of the rest).
fn user_fraction(iip: IipId) -> f64 {
    let iip_cut = if iip.is_vetted() { 0.30 } else { 0.40 };
    (1.0 - iip_cut) * 0.75
}

/// The Figure 5 case studies, pinned so the experiment can find them.
pub const CASE_STUDY_TREBEL: &str = "com.mmm.trebelmusic";
/// Second case study (World on Fire — top-grossing via purchase
/// offers).
pub const CASE_STUDY_WOF: &str = "com.camelgames.wof";

/// Generates the full wild plan.
pub fn generate(cfg: &crate::WorldConfig, seed: SeedFork) -> WildPlan {
    let mut rng = seed.fork("wildgen").rng();
    let mut apps = Vec::with_capacity(cfg.advertised_apps);
    for i in 0..cfg.advertised_apps {
        apps.push(generate_app(cfg, i, &mut rng));
    }
    // Pin the two case studies onto the first two slots (paper-size
    // and small worlds both have ≥ 2 apps).
    if apps.len() >= 2 {
        pin_case_studies(cfg, &mut apps, &mut rng);
    }
    if apps.len() >= 6 {
        pin_brand_apps(&mut apps);
    }
    let mut baseline = Vec::with_capacity(cfg.baseline_apps);
    for i in 0..cfg.baseline_apps {
        baseline.push(generate_baseline(i, &mut rng));
    }
    if cfg.rating_offers {
        // Post-pass on a dedicated fork: the main stream is untouched,
        // so the calibrated world is bit-identical with the knob off.
        inject_rating_offers(&mut apps, seed.fork("rating-offers"));
    }
    WildPlan { apps, baseline }
}

/// Extension: rewrites a slice of offers into "Install and rate N
/// stars" goals (cheap activity offers against the profile's ratings
/// facet). Case studies (slots 0-1) are left alone so Figure 5 holds.
fn inject_rating_offers(apps: &mut [PlannedApp], seed: SeedFork) {
    let mut rng = seed.rng();
    for app in apps.iter_mut().skip(2) {
        for c in &mut app.campaigns {
            for o in &mut c.offers {
                if chance(&mut rng, 0.18) {
                    o.goal = ConversionGoal::RateApp(4);
                    o.payout = Usd::from_cents(rng.gen_range(8..=30));
                }
            }
        }
    }
}

fn sample_iips(rng: &mut impl Rng) -> Vec<IipId> {
    let weights: Vec<f64> = IipId::ALL.iter().map(|i| iip_app_weight(*i)).collect();
    let primary = IipId::ALL[weighted_index(rng, &weights).expect("weights")];
    let mut iips = vec![primary];
    // ~27% of apps appear on a second platform, biased to the same
    // vetting class (a developer comfortable with documentation stays
    // among vetted platforms and vice versa).
    if chance(rng, 0.27) {
        let same_class: Vec<IipId> = IipId::ALL
            .into_iter()
            .filter(|i| *i != primary && i.is_vetted() == primary.is_vetted())
            .collect();
        let cross_class: Vec<IipId> = IipId::ALL
            .into_iter()
            .filter(|i| *i != primary && i.is_vetted() != primary.is_vetted())
            .collect();
        let pool = if chance(rng, 0.8) {
            same_class
        } else {
            cross_class
        };
        if !pool.is_empty() {
            let w: Vec<f64> = pool.iter().map(|i| iip_app_weight(*i)).collect();
            iips.push(pool[weighted_index(rng, &w).expect("weights")]);
        }
    }
    iips
}

fn sample_goal(iip: IipId, rng: &mut impl Rng) -> ConversionGoal {
    if !chance(rng, activity_share(iip)) {
        return ConversionGoal::InstallAndOpen;
    }
    // Table 3 subtype split among activity offers: usage 70%,
    // registration 21%, purchase 9%.
    let r: f64 = rng.gen();
    if r < 0.09 {
        let amount = Usd::from_cents([99, 199, 299, 499, 999][rng.gen_range(0..5)]);
        ConversionGoal::Purchase(amount)
    } else if r < 0.30 {
        if chance(rng, 0.3) {
            ConversionGoal::AllOf(vec![
                ConversionGoal::Register,
                ConversionGoal::SessionTime(300),
            ])
        } else {
            ConversionGoal::Register
        }
    } else {
        // Usage. Arbitrage-style sub-offer goals appear more on vetted
        // platforms (§4.3.2: 7% of vetted apps vs 2% of unvetted).
        let arbitrage_p = if iip.is_vetted() { 0.06 } else { 0.02 };
        if chance(rng, arbitrage_p) {
            ConversionGoal::CompleteSubOffers(rng.gen_range(2..=5))
        } else if chance(rng, 0.5) {
            ConversionGoal::ReachLevel(rng.gen_range(3..=15))
        } else {
            ConversionGoal::SessionTime(rng.gen_range(5..=30) * 60)
        }
    }
}

fn goal_payout_multiplier(goal: &ConversionGoal) -> f64 {
    // Table 3: activity ≈ 9× no-activity on average; purchase ≈ 6–9×
    // the other activity classes.
    match goal {
        ConversionGoal::InstallAndOpen => 1.0,
        ConversionGoal::Register => 5.5,
        ConversionGoal::ReachLevel(_) | ConversionGoal::SessionTime(_) => 8.0,
        ConversionGoal::CompleteSubOffers(_) => 10.0,
        ConversionGoal::Purchase(_) => 48.0,
        ConversionGoal::RateApp(_) => 2.5,
        ConversionGoal::AllOf(_) => 7.0,
    }
}

fn sample_offer(iip: IipId, pre_installs: u64, rng: &mut impl Rng) -> PlannedOffer {
    let goal = sample_goal(iip, rng);
    let median = median_user_payout(iip).dollars_f64();
    // Per-IIP medians are dominated by their majority class, so the
    // base draw is normalized to the no-activity level first.
    let base_no_activity = median / (1.0 + activity_share(iip) * 4.0);
    // No-activity pricing has the heavier tail (the paper's overall
    // $0.06 average sits 3× above RankApp's $0.02 median).
    let sigma = if matches!(goal, ConversionGoal::InstallAndOpen) {
        1.1
    } else {
        0.6
    };
    let user_usd =
        (base_no_activity * goal_payout_multiplier(&goal) * log_normal(rng, 0.0, sigma)).max(0.005);
    let payout = Usd::from_micros((user_usd / user_fraction(iip) * 1e6).round() as i64);
    // Campaign size scales with the platform's price point and with
    // the app's own size (big developers buy big campaigns): without
    // the size term, tiny unvetted apps would all cross their first
    // install bin and Table 5's 16% would be 50%.
    let (cap_median, size_power) = if iip.is_vetted() {
        (350.0, 0.30)
    } else {
        (40.0, 0.40)
    };
    let size_factor = ((pre_installs.max(1) as f64) / median_installs(iip))
        .powf(size_power)
        .clamp(0.2, 3.0);
    let cap = (cap_median * size_factor * log_normal(rng, 0.0, 0.7)).clamp(10.0, 3_000.0) as u64;
    // A tenth of offers geo-target a handful of countries.
    let countries = if chance(rng, 0.10) {
        let n = rng.gen_range(1..=3);
        sample_k(rng, Country::VANTAGE_POINTS, n)
    } else {
        Vec::new()
    };
    PlannedOffer {
        goal,
        payout,
        cap,
        countries,
    }
}

fn generate_app(cfg: &crate::WorldConfig, i: usize, rng: &mut impl Rng) -> PlannedApp {
    let iips = sample_iips(rng);
    let primary = iips[0];
    let genre = Genre::ALL[rng.gen_range(0..Genre::ALL.len())];
    let pre_installs = log_normal(rng, median_installs(primary).ln(), 2.0).max(0.0) as u64;
    let mut campaigns = Vec::new();
    let horizon = cfg.monitoring_days;
    for iip in &iips {
        let duration = (25.0 * log_normal(rng, 0.0, 0.5)).clamp(4.0, (horizon - 2) as f64) as u64;
        let latest_start = horizon.saturating_sub(duration).max(3);
        let start_day = rng.gen_range(2..=latest_start);
        let n_offers = rng.gen_range(1..=3);
        let offers = (0..n_offers)
            .map(|_| sample_offer(*iip, pre_installs, rng))
            .collect();
        // Vetted-platform advertisers run serious parallel marketing
        // (~13% base growth over the campaign on average); unvetted
        // ones mostly don't.
        // The draw always happens (keeps the RNG stream identical
        // across the ablation); the knob only zeroes the effect.
        let drawn = if iip.is_vetted() {
            log_normal(rng, 0.11f64.ln(), 0.6).clamp(0.0, 0.6)
        } else {
            log_normal(rng, 0.03f64.ln(), 0.6).clamp(0.0, 0.2)
        };
        let companion_growth = if cfg.companion_marketing { drawn } else { 0.0 };
        campaigns.push(PlannedCampaign {
            iip: *iip,
            start_day,
            duration_days: duration,
            offers,
            via_marketer: chance(rng, if iip.is_vetted() { 0.18 } else { 0.10 }),
            companion_growth,
        });
    }
    let age = log_normal(rng, median_age_days(primary).ln(), 0.8).max(1.0) as u64;
    let campaign_start =
        study::STUDY_START + iiscope_types::SimDuration::from_days(campaigns[0].start_day);
    let released = SimTime::from_secs(campaign_start.secs().saturating_sub(age * 86_400));

    // Ad libraries: activity-offer apps monetize engagement (Figure 6:
    // 60% of activity apps have ≥5 libraries vs 25% of no-activity).
    let has_activity = campaigns.iter().any(|c| {
        c.offers
            .iter()
            .any(|o| !matches!(o.goal, ConversionGoal::InstallAndOpen))
    });
    let lib_median: f64 = if has_activity { 6.0 } else { 2.6 };
    let ad_library_count = (log_normal(rng, lib_median.ln(), 0.65))
        .round()
        .clamp(0.0, 30.0) as usize;
    let obfuscation = if chance(rng, 0.25) {
        rng.gen_range(0.1..0.5)
    } else {
        0.0
    };

    // Developer identity & funding (Table 7 calibration).
    let vetted = primary.is_vetted();
    let developer_country = Country::ALL[rng.gen_range(0..Country::ALL.len())];
    let developer_name = format!("Studio {i} {}", developer_country.code());
    let developer_website = if chance(rng, if vetted { 0.75 } else { 0.22 }) {
        Some(format!("https://studio{i}.example"))
    } else {
        None
    };
    // §4.3.3 match rates: 39% (vetted) / 15% (unvetted).
    let crunchbase_matched = chance(rng, if vetted { 0.39 } else { 0.15 });
    // Table 7: of matched apps, 15.6% (vetted) / 13.9% (unvetted)
    // raise after their campaigns.
    let raises_funding = crunchbase_matched && chance(rng, if vetted { 0.17 } else { 0.14 });
    let is_public_company = crunchbase_matched && chance(rng, 0.10);

    PlannedApp {
        brand: None,
        package: PackageName::new(format!(
            "com.wild{i}.app{}",
            primary.name().to_ascii_lowercase().replace('-', "")
        ))
        .expect("valid package"),
        title: format!("Wild App {i}"),
        genre,
        developer_name,
        developer_country,
        developer_website,
        pre_installs,
        released,
        campaigns,
        ad_library_count,
        obfuscation,
        crunchbase_matched,
        raises_funding,
        is_public_company,
    }
}

fn pin_case_studies(cfg: &crate::WorldConfig, apps: &mut [PlannedApp], rng: &mut impl Rng) {
    let horizon = cfg.monitoring_days;
    // TREBEL: registration + usage offers on Fyber, mid-window, big
    // caps — appears in the top-games chart after the campaign starts
    // (Figure 5a).
    let trebel = &mut apps[0];
    trebel.package = PackageName::new(CASE_STUDY_TREBEL).expect("valid");
    trebel.title = "TREBEL - Free Music Downloads & Offline Play".into();
    trebel.genre = Genre::GameMusic;
    trebel.pre_installs = 80_000;
    trebel.crunchbase_matched = true;
    trebel.raises_funding = false;
    trebel.campaigns = vec![PlannedCampaign {
        iip: IipId::Fyber,
        start_day: (horizon / 4).max(3),
        duration_days: horizon / 2,
        via_marketer: false,
        companion_growth: if cfg.companion_marketing { 0.05 } else { 0.0 },
        offers: vec![
            PlannedOffer {
                goal: ConversionGoal::Register,
                payout: Usd::from_cents(55),
                cap: 12_000,
                countries: vec![],
            },
            PlannedOffer {
                goal: ConversionGoal::AllOf(vec![
                    ConversionGoal::Register,
                    ConversionGoal::SessionTime(600),
                ]),
                payout: Usd::from_cents(80),
                cap: 9_000,
                countries: vec![],
            },
        ],
    }];
    let _ = rng;
    // World on Fire: purchase offers on Fyber → top-grossing
    // (Figure 5b).
    let wof = &mut apps[1];
    wof.package = PackageName::new(CASE_STUDY_WOF).expect("valid");
    wof.title = "World on Fire".into();
    wof.genre = Genre::GameStrategy;
    wof.pre_installs = 150_000;
    wof.campaigns = vec![PlannedCampaign {
        iip: IipId::Fyber,
        start_day: (horizon / 3).max(3),
        duration_days: horizon / 3,
        via_marketer: false,
        companion_growth: if cfg.companion_marketing { 0.05 } else { 0.0 },
        offers: vec![PlannedOffer {
            goal: ConversionGoal::Purchase(Usd::from_cents(99)),
            payout: Usd::from_cents(420),
            cap: 2_500,
            countries: vec![],
        }],
    }];
}

/// The mainstream-brand apps the paper observed on offer walls
/// ("Apple Music" and "LinkedIn" on vetted IIPs, "TikTok" and "Fiverr"
/// on unvetted ones, §4.2) — pinned into slots 2..6. Their campaigns
/// are created by third-party marketers, not the brands (the §5.1
/// disclosure finding).
pub const BRAND_APPS: [(&str, &str); 4] = [
    ("com.apple.android.music", "Apple Music"),
    (
        "com.linkedin.android",
        "LinkedIn: Job Search & Business News",
    ),
    ("com.zhiliaoapp.musically", "TikTok - Make Your Day"),
    ("com.fiverr.fiverr", "Fiverr - Freelance Services"),
];

fn pin_brand_apps(apps: &mut [PlannedApp]) {
    // Which platform class each brand was seen on (§4.2).
    let placements = [
        IipId::Fyber,
        IipId::AdscendMedia,
        IipId::AyetStudios,
        IipId::RankApp,
    ];
    for (slot, ((package, brand), iip)) in BRAND_APPS.iter().zip(placements).enumerate() {
        let app = &mut apps[2 + slot];
        app.package = PackageName::new(*package).expect("valid brand package");
        app.title = (*brand).to_string();
        app.brand = Some(brand);
        app.pre_installs = 100_000_000 + slot as u64 * 150_000_000;
        app.developer_name = brand
            .split([':', '-'])
            .next()
            .unwrap_or(brand)
            .trim()
            .to_string();
        app.developer_website = Some(format!(
            "https://{}.example",
            app.developer_name.to_ascii_lowercase().replace(' ', "")
        ));
        app.crunchbase_matched = true;
        app.raises_funding = false;
        app.is_public_company = true;
        for c in &mut app.campaigns {
            c.iip = iip;
            // The brand did not buy this; a contracted marketer did.
            c.via_marketer = true;
            // Unvetted walls carry install-count offers only (Table 4:
            // RankApp is 100% no-activity), so a marketer placing a
            // brand there buys plain installs.
            if !iip.is_vetted() {
                for o in &mut c.offers {
                    o.goal = ConversionGoal::InstallAndOpen;
                }
            }
        }
    }
}

fn generate_baseline(i: usize, rng: &mut impl Rng) -> PlannedBaselineApp {
    // Figure 4: popularity spans <1K to >1000M; log-uniform exponent.
    let exponent = rng.gen_range(1.8..9.4);
    let pre_installs = 10f64.powf(exponent) as u64;
    let genre = Genre::ALL[rng.gen_range(0..Genre::ALL.len())];
    let developer_country = Country::ALL[rng.gen_range(0..Country::ALL.len())];
    let website = if chance(rng, 0.6) {
        Some(format!("https://baseline{i}.example"))
    } else {
        None
    };
    // Baseline ad-library loadout sits between the two advertised
    // classes (Figure 6a: ~35% have ≥5).
    let ad_library_count = (log_normal(rng, 3.4f64.ln(), 0.7)).round().clamp(0.0, 30.0) as usize;
    PlannedBaselineApp {
        package: PackageName::new(format!("org.baseline{i}.app")).expect("valid"),
        title: format!("Baseline App {i}"),
        genre,
        developer_name: format!("Baseline Dev {i}"),
        developer_country,
        developer_website: website,
        pre_installs,
        released: SimTime::from_days(200 + (i as u64 % 900)),
        ad_library_count,
        obfuscation: if chance(rng, 0.2) {
            rng.gen_range(0.1..0.4)
        } else {
            0.0
        },
        crunchbase_matched: chance(rng, 0.27),
        raises_funding: false, // decided below from the matched flag
    }
    .with_funding(rng)
}

impl PlannedBaselineApp {
    fn with_funding(mut self, rng: &mut impl Rng) -> PlannedBaselineApp {
        // Table 7 baseline: 6.1% of matched baseline apps raise during
        // the horizon.
        self.raises_funding = self.crunchbase_matched && chance(rng, 0.055);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    fn plan() -> WildPlan {
        generate(&WorldConfig::paper(7), SeedFork::new(7))
    }

    #[test]
    fn scale_matches_config() {
        let p = plan();
        assert_eq!(p.apps.len(), 922);
        assert_eq!(p.baseline.len(), 300);
    }

    #[test]
    fn per_iip_app_counts_follow_table4_ordering() {
        let p = plan();
        let count = |iip: IipId| {
            p.apps
                .iter()
                .filter(|a| a.campaigns.iter().any(|c| c.iip == iip))
                .count()
        };
        assert!(count(IipId::AyetStudios) > count(IipId::RankApp));
        assert!(count(IipId::Fyber) > count(IipId::AdscendMedia));
        assert!(count(IipId::AdscendMedia) > count(IipId::AdGem));
        assert!(count(IipId::AdGem) < 90);
        assert!(count(IipId::Fyber) > 250);
    }

    #[test]
    fn rankapp_offers_are_all_no_activity() {
        let p = plan();
        for app in &p.apps {
            for c in app.campaigns.iter().filter(|c| c.iip == IipId::RankApp) {
                for o in &c.offers {
                    assert!(
                        matches!(o.goal, ConversionGoal::InstallAndOpen),
                        "RankApp had activity offer {:?}",
                        o.goal
                    );
                }
            }
        }
    }

    #[test]
    fn vetted_apps_are_older_and_bigger() {
        let p = plan();
        let med = |vetted: bool, f: &dyn Fn(&PlannedApp) -> f64| -> f64 {
            let mut v: Vec<f64> = p
                .apps
                .iter()
                .filter(|a| a.primary_iip().is_vetted() == vetted)
                .map(f)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let installs_v = med(true, &|a| a.pre_installs as f64);
        let installs_u = med(false, &|a| a.pre_installs as f64);
        assert!(
            installs_v > 50.0 * installs_u,
            "vetted {installs_v} vs unvetted {installs_u}"
        );
        let age = |a: &PlannedApp| {
            let start =
                study::STUDY_START.secs() as f64 + a.campaigns[0].start_day as f64 * 86_400.0;
            (start - a.released.secs() as f64) / 86_400.0
        };
        let age_v = med(true, &age);
        let age_u = med(false, &age);
        assert!(age_v > 4.0 * age_u, "vetted {age_v}d vs unvetted {age_u}d");
    }

    #[test]
    fn payout_shape_activity_over_no_activity() {
        let p = plan();
        let mut no_act = Vec::new();
        let mut act = Vec::new();
        for app in &p.apps {
            for c in &app.campaigns {
                for o in &c.offers {
                    let user = o.payout.dollars_f64() * user_fraction(c.iip);
                    if matches!(o.goal, ConversionGoal::InstallAndOpen) {
                        no_act.push(user);
                    } else {
                        act.push(user);
                    }
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&act) / mean(&no_act);
        assert!(
            (4.0..18.0).contains(&ratio),
            "activity/no-activity payout ratio {ratio} (paper: ~9×)"
        );
        // Absolute scale: no-activity mean around $0.06.
        let m = mean(&no_act);
        assert!((0.02..0.15).contains(&m), "no-activity mean ${m}");
    }

    #[test]
    fn case_studies_are_pinned() {
        let p = plan();
        let trebel = p
            .apps
            .iter()
            .find(|a| a.package.as_str() == CASE_STUDY_TREBEL)
            .expect("trebel exists");
        assert!(trebel.genre.is_game());
        assert!(trebel.has_activity_offer());
        let wof = p
            .apps
            .iter()
            .find(|a| a.package.as_str() == CASE_STUDY_WOF)
            .expect("wof exists");
        assert!(wof.campaigns.iter().any(|c| c
            .offers
            .iter()
            .any(|o| matches!(o.goal, ConversionGoal::Purchase(_)))));
    }

    #[test]
    fn baseline_spans_figure4_range() {
        let p = plan();
        let min = p.baseline.iter().map(|b| b.pre_installs).min().unwrap();
        let max = p.baseline.iter().map(|b| b.pre_installs).max().unwrap();
        assert!(min < 10_000, "min {min}");
        assert!(max > 500_000_000, "max {max}");
    }

    #[test]
    fn crunchbase_match_rates_separate_by_class() {
        let p = plan();
        let rate = |vetted: bool| {
            let apps: Vec<&PlannedApp> = p
                .apps
                .iter()
                .filter(|a| a.primary_iip().is_vetted() == vetted)
                .collect();
            apps.iter().filter(|a| a.crunchbase_matched).count() as f64 / apps.len() as f64
        };
        assert!(rate(true) > 0.28, "vetted match rate {}", rate(true));
        assert!(rate(false) < 0.25, "unvetted match rate {}", rate(false));
    }

    #[test]
    fn library_counts_split_by_activity() {
        let p = plan();
        let frac5 = |act: bool| {
            let apps: Vec<&PlannedApp> = p
                .apps
                .iter()
                .filter(|a| a.has_activity_offer() == act)
                .collect();
            apps.iter().filter(|a| a.ad_library_count >= 5).count() as f64 / apps.len() as f64
        };
        assert!(
            frac5(true) > frac5(false) + 0.2,
            "activity {} vs no-activity {}",
            frac5(true),
            frac5(false)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = plan();
        let b = plan();
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.package, y.package);
            assert_eq!(x.pre_installs, y.pre_installs);
            assert_eq!(x.campaigns.len(), y.campaigns.len());
        }
    }
}
