//! Table 8 — "Breakdown of offer types and payouts of apps advertised
//! on vetted IIPs that raised funding after their campaign."
//!
//! The paper's observation: funded apps use both offer classes, but
//! pay roughly twice the going rate ("the developers interested in
//! raising funding need to aggressively acquire new users, and thus
//! are willing to pay more").

use crate::experiments::common::offer_usd;
use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::{classify_description, OfferType};
use iiscope_monitor::RateBook;
use iiscope_types::{SimDuration, SymSet, Usd};

/// The reproduced Table 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8 {
    /// Number of funded vetted apps analyzed.
    pub funded_apps: usize,
    /// Share of those apps advertising no-activity offers.
    pub no_activity_apps: f64,
    /// Share advertising activity offers.
    pub activity_apps: f64,
    /// Average payout of their no-activity offers.
    pub no_activity_payout: Usd,
    /// Average payout of their activity offers.
    pub activity_payout: Usd,
}

impl Table8 {
    /// Computes the table over the funded vetted apps of Table 7's
    /// logic — the byte-parity oracle for [`Table8::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table8 {
        let ds = &artifacts.dataset;
        let book = RateBook::from_catalog(&world.affiliate_apps);
        let funded = Table8::funded_syms(world, artifacts);
        // One pass over the deduplicated offer column with bitset
        // probes, instead of the old funded-apps × unique-offers
        // rescan. The per-class payout means are exact integer sums,
        // so visit order is invisible.
        let mut no_act_seen = SymSet::default();
        let mut act_seen = SymSet::default();
        let mut no_act_payouts = Vec::new();
        let mut act_payouts = Vec::new();
        for (o, pkg, _) in ds.unique_offers_with_syms() {
            if !o.iip.is_vetted() || !funded.contains(pkg) {
                continue;
            }
            let usd = offer_usd(&book, o).unwrap_or(Usd::ZERO);
            if classify_description(&o.raw.description) == OfferType::NoActivity {
                no_act_seen.insert(pkg);
                no_act_payouts.push(usd);
            } else {
                act_seen.insert(pkg);
                act_payouts.push(usd);
            }
        }
        Table8::assemble(
            &funded,
            &no_act_seen,
            &act_seen,
            &no_act_payouts,
            &act_payouts,
        )
    }

    /// Computes the table from the streaming offer digest: the funded
    /// set still needs the *final* campaign windows and Crunchbase, so
    /// it is computed at render like the batch path, but the offer
    /// pass reads the classified digest instead of re-scanning (and
    /// re-classifying) the deduplicated offer log. Byte-identical to
    /// [`Table8::run`].
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Table8 {
        let funded = Table8::funded_syms(world, artifacts);
        let mut no_act_seen = SymSet::default();
        let mut act_seen = SymSet::default();
        let mut no_act_payouts = Vec::new();
        let mut act_payouts = Vec::new();
        for o in artifacts.aggregates.offers() {
            if !o.iip.is_vetted() || !funded.contains(o.pkg) {
                continue;
            }
            let usd = o.usd.unwrap_or(Usd::ZERO);
            if o.no_activity {
                no_act_seen.insert(o.pkg);
                no_act_payouts.push(usd);
            } else {
                act_seen.insert(o.pkg);
                act_payouts.push(usd);
            }
        }
        Table8::assemble(
            &funded,
            &no_act_seen,
            &act_seen,
            &no_act_payouts,
            &act_payouts,
        )
    }

    /// Funded vetted apps per Table 7's pipeline: campaign window →
    /// crawled developer identity → Crunchbase → funding-round check.
    fn funded_syms(world: &World, artifacts: &WildArtifacts) -> SymSet {
        let ds = &artifacts.dataset;
        let mut funded = SymSet::default();
        for sym in ds.class_syms(true).iter() {
            let Some(obs) = ds.campaign(sym) else {
                continue;
            };
            let Some(profile) = ds.first_profile_sym(sym) else {
                continue;
            };
            let website = if profile.developer_website.is_empty() {
                None
            } else {
                Some(profile.developer_website.as_str())
            };
            let Some(company) = world
                .crunchbase
                .match_developer(&profile.developer_name, website)
            else {
                continue;
            };
            if company.raised_between(
                obs.last_seen,
                obs.last_seen + SimDuration::from_days(super::table7::FUNDING_HORIZON_DAYS),
            ) {
                funded.insert(sym);
            }
        }
        funded
    }

    fn assemble(
        funded: &SymSet,
        no_act_seen: &SymSet,
        act_seen: &SymSet,
        no_act_payouts: &[Usd],
        act_payouts: &[Usd],
    ) -> Table8 {
        let n = funded.len();
        Table8 {
            funded_apps: n,
            no_activity_apps: if n == 0 {
                0.0
            } else {
                no_act_seen.len() as f64 / n as f64
            },
            activity_apps: if n == 0 {
                0.0
            } else {
                act_seen.len() as f64 / n as f64
            },
            no_activity_payout: Usd::mean(no_act_payouts),
            activity_payout: Usd::mean(act_payouts),
        }
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Offer Type", "% of funded apps", "Average payout"]);
        t.row([
            "No activity".to_string(),
            pct(self.no_activity_apps),
            self.no_activity_payout.to_string(),
        ]);
        t.row([
            "Activity".to_string(),
            pct(self.activity_apps),
            self.activity_payout.to_string(),
        ]);
        format!(
            "Table 8: offers of funded vetted apps (N = {})\n{}",
            self.funded_apps,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn funded_apps_use_both_classes() {
        let shared = testworld::shared();
        let t = Table8::run(&shared.world, &shared.artifacts);
        // The small world still produces a handful of funded vetted
        // apps.
        assert!(t.funded_apps >= 1, "no funded vetted apps found");
        // Shares are valid fractions and at least one class is used.
        assert!(t.no_activity_apps <= 1.0 && t.activity_apps <= 1.0);
        assert!(t.no_activity_apps + t.activity_apps > 0.0);
        let rendered = t.render();
        assert!(rendered.contains("funded vetted apps"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Table8::run_incremental(&shared.world, &shared.artifacts),
            Table8::run(&shared.world, &shared.artifacts)
        );
    }
}
