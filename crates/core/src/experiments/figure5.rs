//! Figure 5 — case studies of advertised apps entering top charts
//! during their campaigns: TREBEL (registration/usage offers →
//! top-games) and World on Fire (purchase offers → top-grossing).
//!
//! The series plot the app's percentile rank on the relevant chart per
//! crawl day, with the campaign window marked — the crawl-side view of
//! the paper's Figure 5.

use crate::report::TextTable;
use crate::wildgen::{CASE_STUDY_TREBEL, CASE_STUDY_WOF};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_monitor::Dataset;

/// One case-study panel.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// The app.
    pub package: String,
    /// The chart it targets.
    pub chart: &'static str,
    /// Campaign window (days).
    pub campaign: Option<(u64, u64)>,
    /// `(crawl day, percentile rank)` for each day the app charted.
    pub presence: Vec<(u64, f64)>,
    /// Crawl days where the app did not chart.
    pub absent_days: Vec<u64>,
}

impl CaseStudy {
    /// Batch panel: the per-day chart size comes from a full scan of
    /// the chart log — one scan *per chart day*, which is the report
    /// pass's dominant spill-reload source and exactly what the
    /// aggregate layer's chart-size map eliminates.
    fn compute(ds: &Dataset, package: &str, chart: &'static str) -> CaseStudy {
        CaseStudy::compute_with(ds, package, chart, |day| {
            ds.charts()
                .find(|c| c.day == day && c.chart == chart)
                .map_or(0, |c| c.entries.len())
        })
    }

    /// Shared panel body with a pluggable chart-size lookup (the
    /// percentile axis denominator for one crawl day).
    fn compute_with(
        ds: &Dataset,
        package: &str,
        chart: &'static str,
        size_of: impl Fn(u64) -> usize,
    ) -> CaseStudy {
        let sym = ds.pkg_sym(package);
        let campaign = sym
            .and_then(|s| ds.campaign(s))
            .map(|o| (o.first_seen.days(), o.last_seen.days()));
        let ranks = sym
            .map(|s| ds.chart_presence_sym(s, chart))
            .unwrap_or_default();
        let mut presence = Vec::new();
        let mut absent = Vec::new();
        for &day in ds.chart_days() {
            let rank = ranks.iter().find(|&&(d, _)| d == day).map(|&(_, r)| r);
            let size = size_of(day);
            match rank {
                Some(r) if size > 0 => {
                    presence.push((day, 100.0 * (size - r) as f64 / size as f64));
                }
                _ => absent.push(day),
            }
        }
        CaseStudy {
            package: package.to_string(),
            chart,
            campaign,
            presence,
            absent_days: absent,
        }
    }

    /// Whether the app charts only from the campaign window onward —
    /// Figure 5's visual claim.
    pub fn appears_after_campaign_start(&self) -> bool {
        match (self.campaign, self.presence.first()) {
            (Some((start, _)), Some((first_day, _))) => *first_day >= start,
            _ => false,
        }
    }
}

/// The reproduced Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5 {
    /// Panel (a): TREBEL on top games.
    pub trebel: CaseStudy,
    /// Panel (b): World on Fire on top grossing.
    pub wof: CaseStudy,
}

impl Figure5 {
    /// Computes both panels by rescanning the chart log — the
    /// byte-parity oracle for [`Figure5::run_incremental`].
    pub fn run(_world: &World, artifacts: &WildArtifacts) -> Figure5 {
        Figure5 {
            trebel: CaseStudy::compute(
                &artifacts.dataset,
                CASE_STUDY_TREBEL,
                "topselling_free_games",
            ),
            wof: CaseStudy::compute(&artifacts.dataset, CASE_STUDY_WOF, "topgrossing"),
        }
    }

    /// Computes both panels with per-day chart sizes from the
    /// streaming aggregates' chart-size map — O(log) lookups instead
    /// of a full chart-log scan per chart day, so the figure renders
    /// without touching spilled segments. Byte-identical to
    /// [`Figure5::run`].
    pub fn run_incremental(artifacts: &WildArtifacts) -> Figure5 {
        let ds = &artifacts.dataset;
        let aggs = &artifacts.aggregates;
        Figure5 {
            trebel: CaseStudy::compute_with(ds, CASE_STUDY_TREBEL, "topselling_free_games", |d| {
                aggs.chart_size("topselling_free_games", d)
            }),
            wof: CaseStudy::compute_with(ds, CASE_STUDY_WOF, "topgrossing", |d| {
                aggs.chart_size("topgrossing", d)
            }),
        }
    }

    /// Rendering: day series with campaign markers.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 5: case studies of chart appearances\n");
        for cs in [&self.trebel, &self.wof] {
            out.push_str(&format!(
                "\n({}) {} on {} — campaign days {:?}\n",
                if cs.package == self.trebel.package {
                    "a"
                } else {
                    "b"
                },
                cs.package,
                cs.chart,
                cs.campaign
            ));
            let mut t = TextTable::new(["Day", "Percentile"]);
            for (day, pctile) in &cs.presence {
                t.row([day.to_string(), format!("{pctile:.1}")]);
            }
            if t.is_empty() {
                out.push_str("(never charted)\n");
            } else {
                out.push_str(&t.render());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn case_studies_chart_during_their_campaigns() {
        let shared = testworld::shared();
        let f = Figure5::run(&shared.world, &shared.artifacts);

        for cs in [&f.trebel, &f.wof] {
            assert!(cs.campaign.is_some(), "{} never observed", cs.package);
            assert!(
                !cs.presence.is_empty(),
                "{} never charted on {}",
                cs.package,
                cs.chart
            );
            assert!(
                cs.appears_after_campaign_start(),
                "{} charted before its campaign ({:?} vs {:?})",
                cs.package,
                cs.presence.first(),
                cs.campaign
            );
        }
        let rendered = f.render();
        assert!(rendered.contains("topgrossing"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Figure5::run_incremental(&shared.artifacts),
            Figure5::run(&shared.world, &shared.artifacts)
        );
    }
}
