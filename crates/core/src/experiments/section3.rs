//! §3.2 — the honey-app measurements, rendered: user acquisition,
//! engagement, and install forensics.

use crate::honeystudy::HoneyStudy;
use crate::report::{pct, TextTable};
use crate::world::World;
use iiscope_types::PackageName;

/// The reproduced §3.2 findings plus the enforcement headline.
#[derive(Debug, Clone)]
pub struct Section3 {
    /// The study results.
    pub study: HoneyStudy,
    /// The honey app's final public install bin lower bound — the
    /// "from 0 to over 1,000" takeaway.
    pub final_install_bin: u64,
}

impl Section3 {
    /// Packages the honey study for rendering.
    pub fn run(world: &World, study: HoneyStudy) -> Section3 {
        let pkg = PackageName::new(iiscope_honeyapp::HONEY_PACKAGE).expect("valid");
        let final_install_bin = world
            .store
            .profile(&pkg)
            .map(|p| p.installs.lower_bound())
            .unwrap_or(0);
        Section3 {
            study,
            final_install_bin,
        }
    }

    /// Rendering of the three §3.2 blocks.
    pub fn render(&self) -> String {
        let mut out = String::from("Section 3.2: measurements of purchased installs\n\n");
        let mut t = TextTable::new(["IIP", "Delivered", "Reported", "Missing", "Delivery"]);
        for (iip, delivered, reported, missing, duration) in &self.study.acquisition.per_iip {
            t.row([
                iip.name().to_string(),
                delivered.to_string(),
                reported.to_string(),
                pct(*missing),
                format!("{:.1}h", duration.secs() as f64 / 3600.0),
            ]);
        }
        out.push_str("User acquisition\n");
        out.push_str(&t.render());
        out.push_str(&format!(
            "Total installs: {} (purchased {})\n\n",
            self.study.acquisition.total_installs,
            self.study.outcomes.iter().map(|o| o.purchased).sum::<u64>()
        ));

        let mut t = TextTable::new(["IIP", "Click rate", "Day-2 clickers"]);
        for ((iip, rate), (_, day2)) in self
            .study
            .engagement
            .click_rate
            .iter()
            .zip(&self.study.engagement.day2_clickers)
        {
            t.row([iip.name().to_string(), pct(*rate), day2.to_string()]);
        }
        out.push_str("User engagement (record-button clicks)\n");
        out.push_str(&t.render());

        out.push_str("\nInstall forensics\n");
        out.push_str(&format!(
            "emulator installs: {}\ndatacenter-ASN installs: {}\n",
            self.study.forensics.emulator_installs, self.study.forensics.datacenter_installs
        ));
        for farm in &self.study.forensics.farms {
            out.push_str(&format!(
                "device farm: {} installs in {}, {} rooted, {} same SSID\n",
                farm.installs, farm.block24, farm.rooted, farm.same_ssid
            ));
        }
        let mut t = TextTable::new(["IIP", "money-keyword rate", "top affiliate", "share"]);
        for ((iip, rate), (_, top, share)) in self
            .study
            .forensics
            .money_keyword_rate
            .iter()
            .zip(&self.study.forensics.top_affiliate)
        {
            t.row([iip.name().to_string(), pct(*rate), top.clone(), pct(*share)]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "\nHoney app public install count: 0 -> {}+\n",
            self.final_install_bin
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn renders_all_blocks() {
        let shared = testworld::shared();
        let s3 = Section3::run(&shared.world, shared.honey.clone());
        assert!(s3.final_install_bin >= shared.world.cfg.honey_purchase);
        let rendered = s3.render();
        assert!(rendered.contains("User acquisition"));
        assert!(rendered.contains("RankApp"));
        assert!(rendered.contains("money-keyword rate"));
        assert!(rendered.contains("0 ->"));
    }
}
