//! One module per table/figure of the paper.
//!
//! Every experiment consumes only what the measurement pipeline could
//! see — the milked [`iiscope_monitor::Dataset`], crawled profiles and
//! charts, downloaded APKs, honey-app telemetry, and the Crunchbase
//! snapshot — and returns a typed result plus a printable rendering.
//! `EXPERIMENTS.md` is generated from these renderings.

pub mod common;
pub mod detector_eval;
pub mod disclosure;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod monetization;
pub mod section3;
pub mod section5;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::{HoneyStudy, WildArtifacts, World};

pub use detector_eval::DetectorEval;
pub use disclosure::Disclosure;
pub use figure4::Figure4;
pub use figure5::Figure5;
pub use figure6::Figure6;
pub use monetization::Monetization;
pub use section3::Section3;
pub use section5::Section5;
pub use table1::Table1;
pub use table2::Table2;
pub use table3::Table3;
pub use table4::Table4;
pub use table5::Table5;
pub use table6::Table6;
pub use table7::Table7;
pub use table8::Table8;

/// Runs every experiment and renders the full report — the content of
/// `EXPERIMENTS.md`'s measured side.
pub fn full_report(world: &World, artifacts: &WildArtifacts, honey: HoneyStudy) -> String {
    let mut out = String::new();
    let mut push = |label: &str, s: String| {
        let t = std::time::Instant::now();
        out.push_str(&s);
        out.push('\n');
        let _ = (label, t); // rendering itself is trivial
    };
    let timed = |label: &str, f: &dyn Fn() -> String| -> String {
        let t = std::time::Instant::now();
        let s = f();
        let elapsed = t.elapsed();
        if elapsed.as_millis() > 500 {
            eprintln!("[{label}] computed in {:.1}s", elapsed.as_secs_f64());
        }
        s
    };
    push(
        "s3",
        timed("Section 3", &|| {
            Section3::run(world, honey.clone()).render()
        }),
    );
    push("t1", timed("Table 1", &|| Table1::run(world).render()));
    push(
        "t2",
        timed("Table 2", &|| {
            Table2::run(world, world.cfg.milk_countries[0])
                .map(|t| t.render())
                .unwrap_or_else(|e| format!("Table 2 failed: {e}"))
        }),
    );
    push(
        "t3",
        timed("Table 3", &|| Table3::run(world, artifacts).render()),
    );
    push(
        "t4",
        timed("Table 4", &|| Table4::run(world, artifacts).render()),
    );
    push(
        "t5",
        timed("Table 5", &|| Table5::run(world, artifacts).render()),
    );
    push(
        "t6",
        timed("Table 6", &|| Table6::run(world, artifacts).render()),
    );
    push(
        "t7",
        timed("Table 7", &|| Table7::run(world, artifacts).render()),
    );
    push(
        "t8",
        timed("Table 8", &|| Table8::run(world, artifacts).render()),
    );
    push(
        "f4",
        timed("Figure 4", &|| Figure4::run(world, artifacts).render()),
    );
    push(
        "f5",
        timed("Figure 5", &|| Figure5::run(world, artifacts).render()),
    );
    push(
        "f6",
        timed("Figure 6", &|| Figure6::run(world, artifacts).render()),
    );
    push(
        "mon",
        timed("Monetization", &|| {
            Monetization::run(world, artifacts).render()
        }),
    );
    push(
        "dis",
        timed("Disclosure", &|| Disclosure::run(world, artifacts).render()),
    );
    push(
        "det",
        timed("Detector", &|| {
            DetectorEval::run(world, artifacts)
                .map(|d| d.render())
                .unwrap_or_else(|| "Detector: degenerate classes".to_string())
        }),
    );
    push(
        "s5",
        timed("Section 5", &|| Section5::run(world, artifacts).render()),
    );
    out
}
