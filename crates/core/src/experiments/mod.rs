//! One module per table/figure of the paper.
//!
//! Every experiment consumes only what the measurement pipeline could
//! see — the milked [`iiscope_monitor::Dataset`], crawled profiles and
//! charts, downloaded APKs, honey-app telemetry, and the Crunchbase
//! snapshot — and returns a typed result plus a printable rendering.
//! `EXPERIMENTS.md` is generated from these renderings.

pub mod common;
pub mod detector_eval;
pub mod disclosure;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod monetization;
pub mod section3;
pub mod section5;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::wildsim::fan_out;
use crate::{HoneyStudy, WildArtifacts, World};

pub use detector_eval::DetectorEval;
pub use disclosure::Disclosure;
pub use figure4::Figure4;
pub use figure5::Figure5;
pub use figure6::Figure6;
pub use monetization::Monetization;
pub use section3::Section3;
pub use section5::Section5;
pub use table1::Table1;
pub use table2::Table2;
pub use table3::Table3;
pub use table4::Table4;
pub use table5::Table5;
pub use table6::Table6;
pub use table7::Table7;
pub use table8::Table8;

/// Wall-clock timing of one experiment within a report run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment label (e.g. `"Table 5"`).
    pub label: &'static str,
    /// Seconds spent computing and rendering it.
    pub seconds: f64,
}

/// Runs every experiment and renders the full report — the content of
/// `EXPERIMENTS.md`'s measured side.
pub fn full_report(world: &World, artifacts: &WildArtifacts, honey: HoneyStudy) -> String {
    full_report_timed(world, artifacts, honey).0
}

/// Like [`full_report`], but also returns per-experiment wall-clock
/// timings (`repro --timing` prints them and dumps `BENCH_repro.json`).
///
/// Experiments are independent reads of the world and artifacts — the
/// one writer-shaped step, Table 2's live milking run, captures its
/// intercepts through the per-thread log tap — so at
/// `world.cfg.parallelism > 1` they run concurrently on scoped
/// threads. Sections are joined in fixed report order either way; the
/// report text is identical at every parallelism level.
pub fn full_report_timed(
    world: &World,
    artifacts: &WildArtifacts,
    honey: HoneyStudy,
) -> (String, Vec<ExperimentTiming>) {
    report_timed(world, artifacts, honey, false)
}

/// The incremental report: the hot tables (4–8, figures 5/6,
/// monetization) render from the streaming aggregates folded during
/// the wild study instead of re-scanning the full dataset. The output
/// is byte-identical to [`full_report`] — the batch path is the
/// parity oracle, enforced by `tests/aggregates.rs`.
pub fn full_report_incremental(
    world: &World,
    artifacts: &WildArtifacts,
    honey: HoneyStudy,
) -> String {
    full_report_incremental_timed(world, artifacts, honey).0
}

/// Timed variant of [`full_report_incremental`].
pub fn full_report_incremental_timed(
    world: &World,
    artifacts: &WildArtifacts,
    honey: HoneyStudy,
) -> (String, Vec<ExperimentTiming>) {
    assert!(
        artifacts.aggregates.covers(&artifacts.dataset),
        "incremental report requires aggregates folded over the full dataset \
         (did these artifacts come from run_wild_study?)"
    );
    report_timed(world, artifacts, honey, true)
}

fn report_timed(
    world: &World,
    artifacts: &WildArtifacts,
    honey: HoneyStudy,
    incremental: bool,
) -> (String, Vec<ExperimentTiming>) {
    type Section<'a> = (&'static str, Box<dyn Fn() -> String + Send + Sync + 'a>);
    let sections: Vec<Section> = vec![
        (
            "Section 3",
            Box::new(move || Section3::run(world, honey.clone()).render()),
        ),
        ("Table 1", Box::new(|| Table1::run(world).render())),
        (
            "Table 2",
            Box::new(|| {
                Table2::run(world, world.cfg.milk_countries[0])
                    .map(|t| t.render())
                    .unwrap_or_else(|e| format!("Table 2 failed: {e}"))
            }),
        ),
        (
            "Table 3",
            Box::new(|| Table3::run(world, artifacts).render()),
        ),
        (
            "Table 4",
            Box::new(move || {
                if incremental {
                    Table4::run_incremental(artifacts).render()
                } else {
                    Table4::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Table 5",
            Box::new(move || {
                if incremental {
                    Table5::run_incremental(world, artifacts).render()
                } else {
                    Table5::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Table 6",
            Box::new(move || {
                if incremental {
                    Table6::run_incremental(world, artifacts).render()
                } else {
                    Table6::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Table 7",
            Box::new(move || {
                if incremental {
                    Table7::run_incremental(world, artifacts).render()
                } else {
                    Table7::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Table 8",
            Box::new(move || {
                if incremental {
                    Table8::run_incremental(world, artifacts).render()
                } else {
                    Table8::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Figure 4",
            Box::new(|| Figure4::run(world, artifacts).render()),
        ),
        (
            "Figure 5",
            Box::new(move || {
                if incremental {
                    Figure5::run_incremental(artifacts).render()
                } else {
                    Figure5::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Figure 6",
            Box::new(move || {
                if incremental {
                    Figure6::run_incremental(world, artifacts).render()
                } else {
                    Figure6::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Monetization",
            Box::new(move || {
                if incremental {
                    Monetization::run_incremental(world, artifacts).render()
                } else {
                    Monetization::run(world, artifacts).render()
                }
            }),
        ),
        (
            "Disclosure",
            Box::new(|| Disclosure::run(world, artifacts).render()),
        ),
        (
            "Detector",
            Box::new(|| {
                DetectorEval::run(world, artifacts)
                    .map(|d| d.render())
                    .unwrap_or_else(|| "Detector: degenerate classes".to_string())
            }),
        ),
        (
            "Section 5",
            Box::new(|| Section5::run(world, artifacts).render()),
        ),
    ];

    let rendered = fan_out(world.cfg.parallelism, sections.len(), |j| {
        let t = std::time::Instant::now();
        let s = (sections[j].1)();
        (s, t.elapsed().as_secs_f64())
    });

    let mut out = String::new();
    let mut timings = Vec::with_capacity(sections.len());
    for ((label, _), slot) in sections.iter().zip(rendered) {
        // A panicking section degrades to an inline failure note
        // instead of killing the whole report: the other experiments
        // still render, and healthy runs are byte-identical.
        let (s, seconds) = match slot {
            Ok(pair) => pair,
            Err(e) => (format!("[{label}] FAILED: {e}"), 0.0),
        };
        if seconds > 0.5 {
            eprintln!("[{label}] computed in {seconds:.1}s");
        }
        out.push_str(&s);
        out.push('\n');
        timings.push(ExperimentTiming { label, seconds });
    }
    (out, timings)
}
