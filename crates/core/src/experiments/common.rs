//! Helpers shared by the experiment modules — and the lazily-built
//! shared test world (building a world and running both studies once
//! per test binary keeps the experiment tests fast).

use iiscope_monitor::{Dataset, ProfileSnapshot, RateBook, ScrapedOffer};
use iiscope_types::Usd;

/// Normalizes one scraped offer's displayed reward to USD using the
/// affiliate rate book. `None` for unknown affiliates or garbage.
pub fn offer_usd(book: &RateBook, offer: &ScrapedOffer) -> Option<Usd> {
    book.to_usd(offer.raw.reward, &offer.affiliate)
}

/// First profile snapshot of a package (crawl-day order).
pub fn first_profile<'a>(ds: &'a Dataset, package: &str) -> Option<&'a ProfileSnapshot> {
    ds.profile_series(package).into_iter().next()
}

/// The average campaign duration observed in the dataset, in days —
/// the paper measured 25 and uses it as the baseline observation
/// window (§4.3.1).
pub fn avg_campaign_days(ds: &Dataset) -> u64 {
    let obs = ds.observations();
    if obs.is_empty() {
        return 25;
    }
    let total: u64 = obs.iter().map(|o| o.duration_days()).sum();
    (total / obs.len() as u64).max(1)
}

/// Symbol-side twin of [`avg_campaign_days`]: the same integer result
/// (same campaign set, order-insensitive integer sum) without
/// resolving or name-sorting every package. The incremental report
/// computes this once and shares it across Tables 5–7, where the
/// batch path recomputed the sorted observation list three times.
pub fn avg_campaign_days_sym(ds: &Dataset) -> u64 {
    let (mut total, mut n) = (0u64, 0u64);
    for c in ds.campaigns() {
        total += c.duration_days();
        n += 1;
    }
    total.checked_div(n).map_or(25, |avg| avg.max(1))
}

/// The baseline observation window: starting at the *second* crawl
/// round, for the average campaign duration. Starting one round in
/// leaves a pre-window observation, so the Table 6 exclusion rule
/// ("baseline apps that appeared in top charts at the start of our
/// crawls") has something to test against.
/// Callers compute `avg_days` once via [`avg_campaign_days`] — it is
/// O(dataset) and must not be recomputed per app.
pub fn baseline_window(ds: &Dataset, package: &str, avg_days: u64) -> Option<(u64, u64)> {
    let first = first_profile(ds, package)?.day;
    let mut chart_days = ds.chart_days().iter().copied();
    let (d0, d1) = (chart_days.next(), chart_days.next());
    let start = match (d0, d1) {
        (Some(a), Some(b)) if a >= first => b,
        _ => first + 1,
    };
    Some((start, start + avg_days))
}

#[cfg(test)]
pub(crate) mod testworld {
    //! One shared small world with both studies run, built on first
    //! use.

    use crate::{HoneyStudy, WildArtifacts, World, WorldConfig};
    use std::sync::OnceLock;

    pub struct Shared {
        pub world: World,
        pub artifacts: WildArtifacts,
        pub honey: HoneyStudy,
    }

    static SHARED: OnceLock<Shared> = OnceLock::new();

    pub fn shared() -> &'static Shared {
        SHARED.get_or_init(|| {
            let world = World::build(WorldConfig::small(1234)).expect("world builds");
            let honey = world
                .run_honey_study(world.study_start())
                .expect("honey study runs");
            let artifacts = world.run_wild_study().expect("wild study runs");
            Shared {
                world,
                artifacts,
                honey,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_monitor::parsers::{RawOffer, RewardValue};
    use iiscope_types::{Country, IipId, SimTime};

    #[test]
    fn offer_usd_normalizes_known_affiliates() {
        let apps = iiscope_devices::AffiliateApp::table2_catalog();
        let book = RateBook::from_catalog(&apps);
        let offer = ScrapedOffer {
            iip: IipId::AyetStudios,
            raw: RawOffer {
                offer_key: 1,
                description: "x".into(),
                reward: RewardValue::Points(2_500),
                package: "a.b".into(),
                store_url: "u".into(),
            },
            seen_at: SimTime::EPOCH,
            affiliate: "com.ayet.cashpirate".into(),
            vantage: Country::Us,
        };
        assert_eq!(offer_usd(&book, &offer), Some(Usd::from_dollars(1)));
        let mut unknown = offer;
        unknown.affiliate = "com.not.registered".into();
        assert_eq!(offer_usd(&book, &unknown), None);
    }

    #[test]
    fn avg_campaign_days_fallback() {
        assert_eq!(avg_campaign_days(&Dataset::new()), 25);
    }
}
