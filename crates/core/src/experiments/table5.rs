//! Table 5 — "Comparing apps that increased install counts from vetted
//! and unvetted IIPs with baseline apps", with the two chi-squared
//! tests of §4.3.1.

use crate::experiments::common::baseline_window;
use crate::report::{count_pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::{chi2_2x2, install_increased, Chi2Result};

/// One app-set row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table5Row {
    /// Apps whose bin did not move.
    pub no_increase: u64,
    /// Apps whose bin moved up during their window.
    pub increase: u64,
}

impl Table5Row {
    /// Total apps in the set.
    pub fn total(&self) -> u64 {
        self.no_increase + self.increase
    }

    /// Increase rate.
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.increase as f64 / self.total() as f64
        }
    }
}

/// The reproduced Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// Baseline apps.
    pub baseline: Table5Row,
    /// Apps advertised on vetted platforms.
    pub vetted: Table5Row,
    /// Apps advertised on unvetted platforms.
    pub unvetted: Table5Row,
    /// χ² vetted vs baseline.
    pub chi2_vetted: Option<Chi2Result>,
    /// χ² unvetted vs baseline.
    pub chi2_unvetted: Option<Chi2Result>,
}

impl Table5 {
    /// Computes the table from crawl timelines, deriving the baseline
    /// window from the batch (name-sorted observation list) average —
    /// the byte-parity oracle for [`Table5::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table5 {
        let avg = crate::experiments::common::avg_campaign_days(&artifacts.dataset);
        Table5::run_with_avg(world, artifacts, avg)
    }

    /// Incremental-report variant: identical numbers, but the average
    /// campaign duration comes from the O(#campaigns) symbol-side
    /// fold (shared by Tables 5–7) instead of re-sorting the owned
    /// observation list.
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Table5 {
        let avg = crate::experiments::common::avg_campaign_days_sym(&artifacts.dataset);
        Table5::run_with_avg(world, artifacts, avg)
    }

    /// Computes the table with a caller-supplied average campaign
    /// duration (the baseline observation window length).
    pub fn run_with_avg(world: &World, artifacts: &WildArtifacts, avg_days: u64) -> Table5 {
        let ds = &artifacts.dataset;
        // Sym-order iteration over the class bitsets; the row is a
        // pair of counters, so iteration order is invisible.
        let class_row = |vetted: bool| -> Table5Row {
            let mut row = Table5Row {
                no_increase: 0,
                increase: 0,
            };
            for sym in ds.class_syms(vetted).iter() {
                let Some(obs) = ds.campaign(sym) else {
                    continue;
                };
                let series = ds.profile_series_sym(sym);
                match install_increased(&series, obs.first_seen.days(), obs.last_seen.days()) {
                    Some(true) => row.increase += 1,
                    Some(false) => row.no_increase += 1,
                    None => {}
                }
            }
            row
        };
        let vetted = class_row(true);
        let unvetted = class_row(false);

        let mut baseline = Table5Row {
            no_increase: 0,
            increase: 0,
        };
        for b in &world.plan.baseline {
            let pkg = b.package.as_str();
            let Some((from, to)) = baseline_window(ds, pkg, avg_days) else {
                continue;
            };
            let series = ds.profile_series(pkg);
            match install_increased(&series, from, to) {
                Some(true) => baseline.increase += 1,
                Some(false) => baseline.no_increase += 1,
                None => {}
            }
        }

        let chi2 = |row: &Table5Row| {
            chi2_2x2(
                baseline.no_increase as f64,
                baseline.increase as f64,
                row.no_increase as f64,
                row.increase as f64,
            )
        };
        Table5 {
            chi2_vetted: chi2(&vetted),
            chi2_unvetted: chi2(&unvetted),
            baseline,
            vetted,
            unvetted,
        }
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["App Set", "No Increase", "Increase"]);
        let mut add = |label: &str, r: &Table5Row| {
            t.row([
                format!("{label} (N = {})", r.total()),
                count_pct(r.no_increase, r.total()),
                count_pct(r.increase, r.total()),
            ]);
        };
        add("Baseline", &self.baseline);
        add("Vetted", &self.vetted);
        add("Unvetted", &self.unvetted);
        let fmt_chi = |c: &Option<Chi2Result>| match c {
            Some(r) => format!("chi2 = {:.2}, p = {:.3e}", r.statistic, r.p_value),
            None => "test undefined".to_string(),
        };
        format!(
            "Table 5: install-count increases during campaign windows\n{}\nvetted vs baseline: {}\nunvetted vs baseline: {}\n",
            t.render(),
            fmt_chi(&self.chi2_vetted),
            fmt_chi(&self.chi2_unvetted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn shape_matches_paper() {
        let shared = testworld::shared();
        let t = Table5::run(&shared.world, &shared.artifacts);

        // All three sets are populated.
        assert!(t.baseline.total() > 10, "baseline N {}", t.baseline.total());
        assert!(t.vetted.total() > 10, "vetted N {}", t.vetted.total());
        assert!(t.unvetted.total() > 10, "unvetted N {}", t.unvetted.total());

        // The ordering of Table 5: unvetted ≥ vetted ≫ baseline.
        assert!(
            t.unvetted.rate() > t.baseline.rate(),
            "unvetted {} vs baseline {}",
            t.unvetted.rate(),
            t.baseline.rate()
        );
        assert!(
            t.vetted.rate() > t.baseline.rate(),
            "vetted {} vs baseline {}",
            t.vetted.rate(),
            t.baseline.rate()
        );
        assert!(
            t.unvetted.rate() >= t.vetted.rate(),
            "unvetted {} vs vetted {}",
            t.unvetted.rate(),
            t.vetted.rate()
        );
        // Baseline apps rarely move bins inside 25 days (2% in the
        // paper).
        assert!(
            t.baseline.rate() < 0.15,
            "baseline rate {}",
            t.baseline.rate()
        );

        let rendered = t.render();
        assert!(rendered.contains("Baseline"));
        assert!(rendered.contains("chi2"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Table5::run_incremental(&shared.world, &shared.artifacts),
            Table5::run(&shared.world, &shared.artifacts)
        );
    }
}
