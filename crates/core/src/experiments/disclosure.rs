//! §5.1 — Responsible disclosure.
//!
//! "We contacted the developers of popular apps advertised on vetted
//! and unvetted IIPs … We contacted only 136 popular apps, each with
//! 5M+ installs … At the time of writing, we have received responses
//! from three developers, all of whom were unaware of their apps
//! participating in such campaigns. They also indicated that they are
//! being defrauded."
//!
//! The experiment replays the process: select observed advertised apps
//! whose *crawled* profile shows 5M+ installs, email the profile
//! contact address, and model responses. A developer whose campaign
//! was created by a third-party marketer responds (when they respond
//! at all) that they never bought incentivized installs.

use crate::experiments::common::first_profile;
use crate::report::TextTable;
use crate::world::World;
use crate::WildArtifacts;
use iiscope_types::rng::chance;

/// Install floor for "popular" apps (the paper used 5M+).
pub const POPULAR_FLOOR: u64 = 5_000_000;
/// Observed response rate (3 of 136).
pub const RESPONSE_RATE: f64 = 3.0 / 136.0;

/// One disclosure contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contact {
    /// The app.
    pub package: String,
    /// Developer email from the crawled profile.
    pub email: String,
    /// Whether the developer replied.
    pub responded: bool,
    /// For responders: whether they were aware of the campaign.
    pub aware: Option<bool>,
    /// For responders: whether they attributed it to a contracted
    /// marketing organization (i.e. reported being defrauded).
    pub blames_marketer: Option<bool>,
}

/// The reproduced §5.1 process.
#[derive(Debug, Clone, PartialEq)]
pub struct Disclosure {
    /// Everyone contacted (crawled-popularity ≥ 5M).
    pub contacts: Vec<Contact>,
}

impl Disclosure {
    /// Runs the disclosure round.
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Disclosure {
        let ds = &artifacts.dataset;
        let mut rng = world.seed.fork("disclosure").rng();
        let mut contacts = Vec::new();
        for pkg in ds.advertised_packages() {
            let Some(profile) = first_profile(ds, pkg) else {
                continue;
            };
            if profile.min_installs < POPULAR_FLOOR {
                continue;
            }
            // Large brands have security/marketing teams that answer
            // researcher mail; the long tail mostly doesn't (the
            // paper's 3 responses out of 136).
            let is_brand = world
                .plan
                .apps
                .iter()
                .any(|a| a.package.as_str() == pkg && a.brand.is_some());
            let responded = chance(&mut rng, RESPONSE_RATE) || (is_brand && chance(&mut rng, 0.5));
            let (aware, blames_marketer) = if responded {
                // Ground truth consult: was any of this app's campaigns
                // marketer-created? (The developer knows what they did
                // and did not buy.)
                let via_marketer = world
                    .plan
                    .apps
                    .iter()
                    .find(|a| a.package.as_str() == pkg)
                    .map(|a| a.campaigns.iter().any(|c| c.via_marketer))
                    .unwrap_or(false);
                // §5.1: every responder was unaware; marketer-run
                // campaigns explain how.
                (Some(false), Some(via_marketer))
            } else {
                (None, None)
            };
            contacts.push(Contact {
                package: pkg.to_string(),
                email: profile.developer_email.clone(),
                responded,
                aware,
                blames_marketer,
            });
        }
        Disclosure { contacts }
    }

    /// Apps contacted.
    pub fn contacted(&self) -> usize {
        self.contacts.len()
    }

    /// Responses received.
    pub fn responses(&self) -> usize {
        self.contacts.iter().filter(|c| c.responded).count()
    }

    /// Responders who were unaware of the campaigns.
    pub fn unaware(&self) -> usize {
        self.contacts
            .iter()
            .filter(|c| c.aware == Some(false))
            .count()
    }

    /// Rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["App", "Responded", "Aware", "Blames marketer"]);
        for c in self.contacts.iter().filter(|c| c.responded) {
            t.row([
                c.package.clone(),
                "yes".to_string(),
                match c.aware {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "-",
                }
                .to_string(),
                match c.blames_marketer {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "-",
                }
                .to_string(),
            ]);
        }
        format!(
            "Section 5.1: responsible disclosure — contacted {} popular apps (5M+ installs), {} responses, {} unaware\n{}",
            self.contacted(),
            self.responses(),
            self.unaware(),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;
    use crate::wildgen::BRAND_APPS;

    #[test]
    fn popular_apps_get_contacted_and_brands_are_among_them() {
        let shared = testworld::shared();
        let d = Disclosure::run(&shared.world, &shared.artifacts);
        assert!(d.contacted() >= 4, "contacted {}", d.contacted());
        // The pinned brand apps are popular and advertised, so they are
        // in the contact list (if observed by the monitor).
        let contacted: std::collections::BTreeSet<&str> =
            d.contacts.iter().map(|c| c.package.as_str()).collect();
        let brands_contacted = BRAND_APPS
            .iter()
            .filter(|(pkg, _)| contacted.contains(pkg))
            .count();
        assert!(brands_contacted >= 3, "brands contacted {brands_contacted}");
        // Every responder is unaware (the §5.1 finding).
        assert_eq!(d.unaware(), d.responses());
        assert!(d.render().contains("responsible disclosure"));
    }

    #[test]
    fn brand_campaigns_are_marketer_created() {
        let shared = testworld::shared();
        for (pkg, _) in BRAND_APPS {
            let app = shared
                .world
                .plan
                .apps
                .iter()
                .find(|a| a.package.as_str() == pkg)
                .expect("brand pinned");
            assert!(app.campaigns.iter().all(|c| c.via_marketer), "{pkg}");
            assert!(app.is_public_company);
        }
    }
}
