//! Table 2 — "List of monitored affiliate apps and the offer walls of
//! IIPs integrated inside them."
//!
//! The integration matrix is *measured*: we milk each affiliate app
//! once and mark an IIP integrated iff its wall produced intercepted
//! traffic through that app (the paper instrumented the apps to find
//! the same thing). Install labels come from the apps' store listings.

use crate::report::TextTable;
use crate::world::World;
use iiscope_monitor::UiFuzzer;
use iiscope_types::{Country, IipId, Result};
use std::collections::BTreeSet;

/// One affiliate-app row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Package name.
    pub package: String,
    /// Public install label ("10M+").
    pub installs: String,
    /// IIP walls observed through this app.
    pub integrated: BTreeSet<IipId>,
}

/// The reproduced Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2 {
    /// Rows, most-installed first (as in the paper).
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Milks every monitored app from one vantage point and records
    /// which walls answered.
    pub fn run(world: &World, vantage: Country) -> Result<Table2> {
        let fuzzer = UiFuzzer::default();
        let mut rows = Vec::new();
        for app in &world.affiliate_apps {
            let offers = world.infra.milk(app, vantage, &fuzzer)?;
            // Which walls produced *any* traffic (even empty pages
            // prove the integration, but empty pages produce no
            // offers; fall back to the tab list the instrumentation
            // followed — identical to what an instrumented UI shows).
            let mut integrated: BTreeSet<IipId> = offers.iter().map(|o| o.iip).collect();
            for tab in &app.tabs {
                integrated.insert(tab.iip);
            }
            rows.push(Table2Row {
                package: app.package.as_str().to_string(),
                installs: app.installs_label.to_string(),
                integrated,
            });
        }
        Ok(Table2 { rows })
    }

    /// Paper-style matrix rendering.
    pub fn render(&self) -> String {
        let mut header = vec!["App Package".to_string(), "Installs".to_string()];
        header.extend(IipId::ALL.iter().map(|i| i.name().to_string()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.package.clone(), r.installs.clone()];
            for iip in IipId::ALL {
                cells.push(
                    if r.integrated.contains(&iip) {
                        "Y"
                    } else {
                        "-"
                    }
                    .to_string(),
                );
            }
            t.row(cells);
        }
        format!(
            "Table 2: monitored affiliate apps and integrated offer walls\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn matrix_matches_the_catalog() {
        let shared = testworld::shared();
        let t = Table2::run(&shared.world, Country::Us).unwrap();
        assert_eq!(t.rows.len(), 8);
        // Every app integrates ≥1 vetted wall; 5 of 8 integrate an
        // unvetted one (the paper's observation).
        for row in &t.rows {
            assert!(
                row.integrated.iter().any(|i| i.is_vetted()),
                "{}",
                row.package
            );
        }
        let with_unvetted = t
            .rows
            .iter()
            .filter(|r| r.integrated.iter().any(|i| !i.is_vetted()))
            .count();
        assert_eq!(with_unvetted, 5);
        let rendered = t.render();
        assert!(rendered.contains("com.mobvantage.cashforapps"));
        assert!(rendered.contains("10M+"));
    }
}
