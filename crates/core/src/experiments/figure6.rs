//! Figure 6 — "Distribution of unique ad libraries across apps":
//! (a) by offer-activity class, (b) by IIP class, both against the
//! baseline. Counts come from LibRadar-style static analysis of the
//! *downloaded* APKs, never from catalog ground truth.

use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::libradar::count_libraries;
use iiscope_analysis::{classify_description, stats, OfferType};
use iiscope_types::SymSet;

/// One CDF series.
#[derive(Debug, Clone, PartialEq)]
pub struct LibSeries {
    /// Group label.
    pub label: &'static str,
    /// Per-app unique library counts.
    pub counts: Vec<usize>,
    /// Fraction of apps with ≥5 libraries (the paper's headline cut).
    pub frac_ge5: f64,
}

impl LibSeries {
    fn new(label: &'static str, counts: Vec<usize>) -> LibSeries {
        let frac_ge5 = stats::frac_at_least(&counts, 5);
        LibSeries {
            label,
            counts,
            frac_ge5,
        }
    }

    /// Empirical CDF over `0..=30` libraries.
    pub fn cdf(&self) -> Vec<f64> {
        stats::ecdf_counts(&self.counts, 30)
    }
}

/// The reproduced Figure 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure6 {
    /// Panel (a): activity apps, no-activity apps, baseline.
    pub by_offer_type: [LibSeries; 3],
    /// Panel (b): vetted, unvetted, baseline.
    pub by_iip_type: [LibSeries; 3],
}

impl Figure6 {
    /// Runs the static analysis over the downloaded APKs, classifying
    /// packages by a rescan of the deduplicated offer log — the
    /// byte-parity oracle for [`Figure6::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Figure6 {
        // Classify each advertised package by its observed offers —
        // one pass over the deduplicated offer column into bitsets.
        let ds = &artifacts.dataset;
        let mut activity = SymSet::default();
        let mut any_no_activity = SymSet::default();
        for (o, pkg, _) in ds.unique_offers_with_syms() {
            if classify_description(&o.raw.description) == OfferType::NoActivity {
                any_no_activity.insert(pkg);
            } else {
                activity.insert(pkg);
            }
        }
        Figure6::with_classes(world, artifacts, activity, any_no_activity)
    }

    /// Same figure, but the activity/no-activity package sets come
    /// from the streaming offer digest (classified at fold time).
    /// Byte-identical to [`Figure6::run`].
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Figure6 {
        let activity = artifacts.aggregates.activity_syms();
        let any_no_activity = artifacts.aggregates.no_activity_syms();
        Figure6::with_classes(world, artifacts, activity, any_no_activity)
    }

    fn with_classes(
        world: &World,
        artifacts: &WildArtifacts,
        activity: SymSet,
        any_no_activity: SymSet,
    ) -> Figure6 {
        let ds = &artifacts.dataset;
        // Every series below is sorted/thresholded before rendering,
        // so sym-order visits are invisible in the output.
        let counts_for = |pkgs: &mut dyn Iterator<Item = &str>| -> Vec<usize> {
            pkgs.filter_map(|p| artifacts.apks.get(p).map(|bytes| count_libraries(bytes)))
                .collect()
        };
        let sym_counts = |pkgs: &mut dyn Iterator<Item = iiscope_types::Sym>| -> Vec<usize> {
            counts_for(&mut pkgs.map(|s| ds.pkg_name(s)))
        };
        let activity_counts = sym_counts(&mut activity.iter());
        // Apps with any activity offer count as activity apps.
        let no_activity_counts =
            sym_counts(&mut any_no_activity.iter().filter(|&s| !activity.contains(s)));
        let vetted_counts = sym_counts(&mut ds.class_syms(true).iter());
        let unvetted_counts = sym_counts(&mut ds.class_syms(false).iter());
        let baseline_counts =
            counts_for(&mut world.plan.baseline.iter().map(|b| b.package.as_str()));
        Figure6 {
            by_offer_type: [
                LibSeries::new("Activity offers", activity_counts),
                LibSeries::new("No activity offers", no_activity_counts),
                LibSeries::new("Baseline", baseline_counts.clone()),
            ],
            by_iip_type: [
                LibSeries::new("Vetted", vetted_counts),
                LibSeries::new("Unvetted", unvetted_counts),
                LibSeries::new("Baseline", baseline_counts),
            ],
        }
    }

    /// Rendering: the ≥5-library headline per group plus CDF deciles.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 6: unique ad libraries per app (static analysis)\n");
        for (panel, series) in [
            ("a: offer type", &self.by_offer_type),
            ("b: IIP type", &self.by_iip_type),
        ] {
            out.push_str(&format!("\nPanel ({panel})\n"));
            let mut t = TextTable::new(["Group", "N", ">=5 libs", "median"]);
            for s in series.iter() {
                let median = {
                    let mut v = s.counts.clone();
                    v.sort_unstable();
                    if v.is_empty() {
                        0
                    } else {
                        v[(v.len() - 1) / 2]
                    }
                };
                t.row([
                    s.label.to_string(),
                    s.counts.len().to_string(),
                    pct(s.frac_ge5),
                    median.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn activity_apps_carry_more_ad_libraries() {
        let shared = testworld::shared();
        let f = Figure6::run(&shared.world, &shared.artifacts);
        let [activity, no_activity, baseline] = &f.by_offer_type;
        assert!(!activity.counts.is_empty());
        assert!(!no_activity.counts.is_empty());
        assert!(!baseline.counts.is_empty());
        // The paper: 60% vs 25% at the ≥5 cut; require a clear gap.
        assert!(
            activity.frac_ge5 > no_activity.frac_ge5 + 0.1,
            "activity {} vs no-activity {}",
            activity.frac_ge5,
            no_activity.frac_ge5
        );
        // Panel b: vetted > unvetted (55% vs 20% in the paper).
        let [vetted, unvetted, _] = &f.by_iip_type;
        assert!(
            vetted.frac_ge5 > unvetted.frac_ge5,
            "vetted {} vs unvetted {}",
            vetted.frac_ge5,
            unvetted.frac_ge5
        );
        // CDFs are monotone and end at 1.
        for s in f.by_offer_type.iter().chain(f.by_iip_type.iter()) {
            let cdf = s.cdf();
            assert!(cdf.windows(2).all(|w| w[1] >= w[0]));
            assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
        }
        assert!(f.render().contains("Panel (a: offer type)"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Figure6::run_incremental(&shared.world, &shared.artifacts),
            Figure6::run(&shared.world, &shared.artifacts)
        );
    }
}
