//! §5.2 — "Google Play Store's Policy and Enforcement": looking for
//! install-count *decreases* in the crawl timelines. The paper found
//! none for baseline or vetted-advertised apps and decreases for only
//! ~2% of unvetted-advertised apps.

use crate::report::{count_pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::install_decreased;

/// One app-set row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section5Row {
    /// Apps whose public count never decreased.
    pub stable: u64,
    /// Apps with at least one observed decrease.
    pub decreased: u64,
}

impl Section5Row {
    /// Total observed apps.
    pub fn total(&self) -> u64 {
        self.stable + self.decreased
    }

    /// Decrease rate.
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.decreased as f64 / self.total() as f64
        }
    }
}

/// The reproduced §5.2 measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Section5 {
    /// Baseline apps.
    pub baseline: Section5Row,
    /// Vetted-advertised apps.
    pub vetted: Section5Row,
    /// Unvetted-advertised apps.
    pub unvetted: Section5Row,
}

impl Section5 {
    /// Scans every profile timeline for downward bin moves.
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Section5 {
        let ds = &artifacts.dataset;
        // The row is a pair of counters, so visit order is invisible —
        // the class sets scan in sym order, the baseline in plan order.
        let scan = |syms: &mut dyn Iterator<Item = iiscope_types::Sym>| -> Section5Row {
            let mut row = Section5Row {
                stable: 0,
                decreased: 0,
            };
            for sym in syms {
                let series = ds.profile_series_sym(sym);
                if series.is_empty() {
                    continue;
                }
                if install_decreased(&series) {
                    row.decreased += 1;
                } else {
                    row.stable += 1;
                }
            }
            row
        };
        Section5 {
            baseline: scan(
                &mut world
                    .plan
                    .baseline
                    .iter()
                    .filter_map(|b| ds.pkg_sym(b.package.as_str())),
            ),
            vetted: scan(&mut ds.class_syms(true).iter()),
            unvetted: scan(&mut ds.class_syms(false).iter()),
        }
    }

    /// Rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["App Set", "Stable", "Decreased"]);
        let mut add = |label: &str, r: &Section5Row| {
            t.row([
                format!("{label} (N = {})", r.total()),
                count_pct(r.stable, r.total()),
                count_pct(r.decreased, r.total()),
            ]);
        };
        add("Baseline", &self.baseline);
        add("Vetted", &self.vetted);
        add("Unvetted", &self.unvetted);
        format!(
            "Section 5.2: install-count decreases (enforcement signal)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn enforcement_is_rare_and_skewed_to_unvetted() {
        let shared = testworld::shared();
        let s5 = Section5::run(&shared.world, &shared.artifacts);
        // Baseline apps never decrease (they have no tagged installs).
        assert_eq!(s5.baseline.decreased, 0, "baseline decreases");
        // Decreases are rare overall (the paper: ~2% of unvetted apps,
        // none elsewhere; with a small world the count may be zero).
        assert!(
            s5.unvetted.rate() < 0.15,
            "unvetted rate {}",
            s5.unvetted.rate()
        );
        assert!(s5.vetted.rate() < 0.10, "vetted rate {}", s5.vetted.rate());
        assert!(s5.render().contains("Decreased"));
    }
}
