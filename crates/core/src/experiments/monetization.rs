//! §4.3.2 — Monetization: advertising and arbitrage.
//!
//! The advertising half is Figure 6's headline ("more than 60% of apps
//! requiring users to perform in-app tasks integrate 5 or more
//! advertising libraries"); the arbitrage half is the manual-analysis
//! result: "3.9% of apps (36 out of 922) use arbitrage-based activity
//! offers … 7% of apps from vetted IIPs while only 2% of apps from
//! unvetted IIPs". Both are recomputed here from observed data, plus
//! the §4.3.3 public-company tally ("developers of 28 advertised
//! mobile apps … are publicly traded companies").

use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::classify::is_arbitrage;
use iiscope_analysis::libradar::count_libraries;
use iiscope_analysis::stats::frac_at_least;
use iiscope_types::SymSet;

/// The reproduced §4.3.2/§4.3.3 monetization summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Monetization {
    /// Advertised apps with ≥1 arbitrage-style offer, overall share.
    pub arbitrage_share: f64,
    /// Arbitrage share among vetted-advertised apps.
    pub arbitrage_share_vetted: f64,
    /// Arbitrage share among unvetted-advertised apps.
    pub arbitrage_share_unvetted: f64,
    /// Share of activity-offer apps with ≥5 detected ad libraries.
    pub activity_apps_ge5_libs: f64,
    /// Publicly-traded companies among matched advertised developers.
    pub public_companies: usize,
    /// Brand names among public-company apps (the paper names Redfin
    /// and IGG; our world pins Apple Music, LinkedIn, TikTok, Fiverr).
    pub public_brands: Vec<String>,
}

impl Monetization {
    /// Computes the summary, classifying packages by a rescan of the
    /// deduplicated offer log — the byte-parity oracle for
    /// [`Monetization::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Monetization {
        // One pass over the deduplicated offer column classifies every
        // advertised package into the arbitrage / activity bitsets.
        let ds = &artifacts.dataset;
        let mut arbitrage = SymSet::default();
        let mut activity = SymSet::default();
        for (o, pkg, _) in ds.unique_offers_with_syms() {
            if is_arbitrage(&o.raw.description) {
                arbitrage.insert(pkg);
            }
            if iiscope_analysis::classify_description(&o.raw.description).is_activity() {
                activity.insert(pkg);
            }
        }
        Monetization::with_classes(world, artifacts, arbitrage, activity)
    }

    /// Same summary, with the arbitrage/activity package sets taken
    /// from the streaming offer digest (an offer is an activity offer
    /// iff it did not classify as no-activity). Byte-identical to
    /// [`Monetization::run`].
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Monetization {
        let arbitrage = artifacts.aggregates.arbitrage_syms();
        let activity = artifacts.aggregates.activity_syms();
        Monetization::with_classes(world, artifacts, arbitrage, activity)
    }

    fn with_classes(
        world: &World,
        artifacts: &WildArtifacts,
        arbitrage: SymSet,
        activity: SymSet,
    ) -> Monetization {
        let ds = &artifacts.dataset;
        let share = |pkgs: &SymSet| {
            if pkgs.is_empty() {
                return 0.0;
            }
            pkgs.iter().filter(|&s| arbitrage.contains(s)).count() as f64 / pkgs.len() as f64
        };

        // Activity-offer apps with ≥5 ad libraries (from downloaded
        // APKs). `frac_at_least` is a threshold count, so sym-order
        // iteration is invisible.
        let counts: Vec<usize> = activity
            .iter()
            .filter_map(|s| {
                artifacts
                    .apks
                    .get(ds.pkg_name(s))
                    .map(|b| count_libraries(b))
            })
            .collect();

        // Public companies among matched developers of advertised apps
        // (a counter plus a re-sorted brand list — order-insensitive).
        let mut public_companies = 0;
        let mut public_brands = Vec::new();
        for sym in ds.advertised_syms().iter() {
            let Some(profile) = ds.first_profile_sym(sym) else {
                continue;
            };
            let website = if profile.developer_website.is_empty() {
                None
            } else {
                Some(profile.developer_website.as_str())
            };
            if let Some(company) = world
                .crunchbase
                .match_developer(&profile.developer_name, website)
            {
                if company.is_public {
                    public_companies += 1;
                    let pkg = ds.pkg_name(sym);
                    if world
                        .plan
                        .apps
                        .iter()
                        .any(|a| a.package.as_str() == pkg && a.brand.is_some())
                    {
                        public_brands.push(profile.title.clone());
                    }
                }
            }
        }
        public_brands.sort();

        Monetization {
            arbitrage_share: share(ds.advertised_syms()),
            arbitrage_share_vetted: share(ds.class_syms(true)),
            arbitrage_share_unvetted: share(ds.class_syms(false)),
            activity_apps_ge5_libs: frac_at_least(&counts, 5),
            public_companies,
            public_brands,
        }
    }

    /// Rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Metric", "Value"]);
        t.row([
            "Arbitrage apps (all advertised)".to_string(),
            pct(self.arbitrage_share),
        ]);
        t.row([
            "Arbitrage apps (vetted)".to_string(),
            pct(self.arbitrage_share_vetted),
        ]);
        t.row([
            "Arbitrage apps (unvetted)".to_string(),
            pct(self.arbitrage_share_unvetted),
        ]);
        t.row([
            "Activity apps with >=5 ad libraries".to_string(),
            pct(self.activity_apps_ge5_libs),
        ]);
        t.row([
            "Public companies among advertisers".to_string(),
            self.public_companies.to_string(),
        ]);
        format!(
            "Section 4.3.2/4.3.3: monetization summary\n{}\npublic-company brands observed: {}\n",
            t.render(),
            if self.public_brands.is_empty() {
                "(none)".to_string()
            } else {
                self.public_brands.join(", ")
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn arbitrage_shape_matches_paper() {
        let shared = testworld::shared();
        let m = Monetization::run(&shared.world, &shared.artifacts);
        // Paper: 3.9% overall, 7% vetted vs 2% unvetted — assert the
        // ordering and a sane band.
        assert!(
            m.arbitrage_share_vetted >= m.arbitrage_share_unvetted,
            "vetted {} vs unvetted {}",
            m.arbitrage_share_vetted,
            m.arbitrage_share_unvetted
        );
        assert!(m.arbitrage_share < 0.25, "overall {}", m.arbitrage_share);
        // Figure 6's headline: most activity apps carry ≥5 libraries.
        assert!(
            m.activity_apps_ge5_libs > 0.4,
            "activity >=5 libs {}",
            m.activity_apps_ge5_libs
        );
        // The pinned brand apps make the public-company tally non-zero.
        assert!(m.public_companies >= 3, "public {}", m.public_companies);
        assert!(!m.public_brands.is_empty());
        assert!(m.render().contains("Arbitrage"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Monetization::run_incremental(&shared.world, &shared.artifacts),
            Monetization::run(&shared.world, &shared.artifacts)
        );
    }
}
