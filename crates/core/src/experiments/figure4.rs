//! Figure 4 — "Install counts of the baseline apps": the histogram
//! showing the baseline spans everything from under 1K to beyond
//! 1000M installs. Computed from the baseline apps' first crawled
//! profiles (public binned counts, as the paper had).

use crate::experiments::common::first_profile;
use crate::report::TextTable;
use crate::world::World;
use crate::WildArtifacts;
use iiscope_playstore::InstallBin;

/// The reproduced Figure 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure4 {
    /// App counts per histogram bucket, in
    /// [`InstallBin::FIGURE4_BUCKETS`] order.
    pub counts: [u64; 8],
    /// Baseline apps with at least one crawled profile.
    pub total: u64,
}

impl Figure4 {
    /// Computes the histogram.
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Figure4 {
        let ds = &artifacts.dataset;
        let mut counts = [0u64; 8];
        let mut total = 0;
        for b in &world.plan.baseline {
            let Some(profile) = first_profile(ds, b.package.as_str()) else {
                continue;
            };
            counts[InstallBin::figure4_bucket(profile.min_installs)] += 1;
            total += 1;
        }
        Figure4 { counts, total }
    }

    /// Rendering: one row per bucket plus a crude bar.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Install Counts", "Apps", ""]);
        for (i, label) in InstallBin::FIGURE4_BUCKETS.iter().enumerate() {
            let n = self.counts[i];
            t.row([label.to_string(), n.to_string(), "#".repeat(n as usize)]);
        }
        format!(
            "Figure 4: install counts of the baseline apps (N = {})\n{}",
            self.total,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn baseline_spans_the_whole_range() {
        let shared = testworld::shared();
        let f = Figure4::run(&shared.world, &shared.artifacts);
        assert_eq!(f.counts.iter().sum::<u64>(), f.total);
        assert!(f.total as usize >= shared.world.plan.baseline.len() * 8 / 10);
        // Apps at both ends of the spectrum (the paper's spread).
        assert!(f.counts[0] + f.counts[1] > 0, "small apps missing");
        assert!(f.counts[6] + f.counts[7] > 0, "mega apps missing");
        let rendered = f.render();
        assert!(rendered.contains("1000M+"));
    }
}
