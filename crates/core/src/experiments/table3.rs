//! Table 3 — "Prevalence of different types of incentivized install
//! offers and their average payouts."
//!
//! Works purely on the milked dataset: unique offers are classified by
//! description (the paper's manual labelling) and their displayed
//! rewards normalized to USD through the affiliate rate book.

use crate::experiments::common::offer_usd;
use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::{classify_description, ActivityKind, OfferType};
use iiscope_monitor::RateBook;
use iiscope_types::Usd;

/// One class row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Offer class label.
    pub class: String,
    /// Share of all offers.
    pub share: f64,
    /// Average normalized payout.
    pub avg_payout: Usd,
    /// Offer count in the class.
    pub count: usize,
}

/// The reproduced Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Total unique offers (the paper's N = 2,126).
    pub total_offers: usize,
    /// Unique descriptions (the paper's 1,128).
    pub unique_descriptions: usize,
    /// Rows: No activity, Activity, then the three subtypes.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Computes the table.
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table3 {
        let book = RateBook::from_catalog(&world.affiliate_apps);
        let unique = artifacts.dataset.unique_offers();
        let total = unique.len();
        let mut per_class: Vec<(OfferType, Usd)> = Vec::new();
        for o in &unique {
            let class = classify_description(&o.raw.description);
            let usd = offer_usd(&book, o).unwrap_or(Usd::ZERO);
            per_class.push((class, usd));
        }
        let row = |label: &str, pred: &dyn Fn(OfferType) -> bool| -> Table3Row {
            let matching: Vec<Usd> = per_class
                .iter()
                .filter(|(c, _)| pred(*c))
                .map(|(_, u)| *u)
                .collect();
            Table3Row {
                class: label.to_string(),
                share: if total == 0 {
                    0.0
                } else {
                    matching.len() as f64 / total as f64
                },
                avg_payout: Usd::mean(&matching),
                count: matching.len(),
            }
        };
        Table3 {
            total_offers: total,
            unique_descriptions: artifacts.dataset.unique_descriptions().len(),
            rows: vec![
                row("No activity", &|c| c == OfferType::NoActivity),
                row("Activity", &|c| c.is_activity()),
                row("Activity (Usage)", &|c| {
                    c == OfferType::Activity(ActivityKind::Usage)
                }),
                row("Activity (Registration)", &|c| {
                    c == OfferType::Activity(ActivityKind::Registration)
                }),
                row("Activity (Purchase)", &|c| {
                    c == OfferType::Activity(ActivityKind::Purchase)
                }),
            ],
        }
    }

    /// Share of a class by label.
    pub fn share_of(&self, label: &str) -> Option<f64> {
        self.rows.iter().find(|r| r.class == label).map(|r| r.share)
    }

    /// Average payout of a class by label.
    pub fn payout_of(&self, label: &str) -> Option<Usd> {
        self.rows
            .iter()
            .find(|r| r.class == label)
            .map(|r| r.avg_payout)
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Offer Type", "% of offers", "Average payout"]);
        for r in &self.rows {
            t.row([r.class.clone(), pct(r.share), r.avg_payout.to_string()]);
        }
        format!(
            "Table 3: offer types and payouts (N = {} unique offers, {} unique descriptions)\n{}",
            self.total_offers,
            self.unique_descriptions,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn shape_matches_paper() {
        let shared = testworld::shared();
        let t = Table3::run(&shared.world, &shared.artifacts);
        assert!(t.total_offers > 50, "{}", t.total_offers);
        assert!(t.unique_descriptions > 10);

        // Rough half/half split (47%/53% in the paper).
        let no_act = t.share_of("No activity").unwrap();
        let act = t.share_of("Activity").unwrap();
        assert!((no_act + act - 1.0).abs() < 1e-9);
        assert!(
            (0.30..=0.70).contains(&no_act),
            "no-activity share {no_act}"
        );

        // Activity pays several times more than no-activity (9× in the
        // paper).
        let p_no = t.payout_of("No activity").unwrap().dollars_f64();
        let p_act = t.payout_of("Activity").unwrap().dollars_f64();
        assert!(p_act > 3.0 * p_no, "activity {p_act} vs no-activity {p_no}");

        // Purchase offers are the expensive ones.
        let p_purchase = t.payout_of("Activity (Purchase)").unwrap().dollars_f64();
        let p_usage = t.payout_of("Activity (Usage)").unwrap().dollars_f64();
        let p_reg = t
            .payout_of("Activity (Registration)")
            .unwrap()
            .dollars_f64();
        assert!(p_purchase > 2.5 * p_usage, "{p_purchase} vs {p_usage}");
        assert!(p_purchase > 2.5 * p_reg, "{p_purchase} vs {p_reg}");

        // Usage dominates the activity subtypes (37/11/5 in Table 3).
        let s_usage = t.share_of("Activity (Usage)").unwrap();
        let s_reg = t.share_of("Activity (Registration)").unwrap();
        let s_pur = t.share_of("Activity (Purchase)").unwrap();
        assert!(
            s_usage > s_reg && s_reg > s_pur,
            "{s_usage}/{s_reg}/{s_pur}"
        );

        // Absolute scale: no-activity near the paper's $0.06.
        assert!((0.01..=0.20).contains(&p_no), "no-activity avg ${p_no}");

        let rendered = t.render();
        assert!(rendered.contains("No activity"));
        assert!(rendered.contains("Activity (Purchase)"));
    }
}
