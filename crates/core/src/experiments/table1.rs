//! Table 1 — "Characterization of different IIPs identified in our
//! study by reviewing their websites and attempting to register with
//! them as a developer."
//!
//! The experiment does what the authors did: it *attempts to register*
//! with each platform as an undocumented, low-deposit developer and
//! classifies platforms by how the registration goes. A rejection
//! demanding documents or a four-figure deposit marks the platform
//! vetted; a $25 walk-in acceptance marks it unvetted.

use crate::report::TextTable;
use crate::world::World;
use iiscope_iip::{DeveloperApplication, VettingOutcome};
use iiscope_types::{DeveloperId, IipId, Usd};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// The platform.
    pub iip: IipId,
    /// Observed classification (from the registration probe, not from
    /// ground truth).
    pub observed_vetted: bool,
    /// Home URL.
    pub home_url: &'static str,
}

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Probes every platform.
    pub fn run(world: &World) -> Table1 {
        let probe_dev = DeveloperId(999_999);
        let rows = IipId::ALL
            .into_iter()
            .map(|iip| {
                let platform = &world.platforms[&iip];
                // A walk-in: no documents, double-digit dollars —
                // unvetted platforms take it, vetted ones demand
                // paperwork and four figures.
                let outcome = platform.profile.review(&DeveloperApplication {
                    developer: probe_dev,
                    has_tax_id: false,
                    has_bank_account: false,
                    deposit: Usd::from_dollars(60),
                });
                Table1Row {
                    iip,
                    observed_vetted: matches!(outcome, VettingOutcome::Rejected(_)),
                    home_url: iip.home_url(),
                }
            })
            .collect();
        Table1 { rows }
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["IIP", "Type", "Home URL"]);
        for r in &self.rows {
            t.row([
                r.iip.name(),
                if r.observed_vetted {
                    "Vetted"
                } else {
                    "Unvetted"
                },
                r.home_url,
            ]);
        }
        format!(
            "Table 1: IIP characterization (registration probe)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn probe_recovers_the_table1_split() {
        let shared = testworld::shared();
        let t = Table1::run(&shared.world);
        assert_eq!(t.rows.len(), 7);
        for row in &t.rows {
            assert_eq!(
                row.observed_vetted,
                row.iip.is_vetted(),
                "{} misclassified",
                row.iip
            );
        }
        let rendered = t.render();
        assert!(rendered.contains("RankApp"));
        assert!(rendered.contains("Unvetted"));
        assert!(rendered.contains("fyber.com"));
    }
}
