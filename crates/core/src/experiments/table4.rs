//! Table 4 — per-IIP summary of offers and advertised apps.
//!
//! Everything is derived from monitoring data: offers from milking,
//! app/developer metadata from the profile crawls, app age from the
//! difference between campaign start (first offer sighting) and the
//! profile's release day.

use crate::experiments::common::offer_usd;
use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::classify_description;
use iiscope_analysis::OfferType;
use iiscope_monitor::RateBook;
use iiscope_types::{IipId, Usd};
use std::collections::BTreeSet;

/// One platform row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Platform.
    pub iip: IipId,
    /// Median normalized offer payout.
    pub median_payout: Usd,
    /// Share of no-activity offers.
    pub no_activity_share: f64,
    /// Number of advertised apps.
    pub apps: usize,
    /// Number of distinct developers.
    pub developers: usize,
    /// Number of distinct developer countries.
    pub countries: usize,
    /// Number of distinct genres.
    pub genres: usize,
    /// Median public install count at first observation.
    pub median_installs: u64,
    /// Median app age at campaign start (days).
    pub median_age_days: u64,
}

/// The reproduced Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Rows in the paper's order (unvetted first, then vetted).
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    /// Computes the per-IIP summary from a full rescan of the
    /// deduplicated offer log — the byte-parity oracle for
    /// [`Table4::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table4 {
        let book = RateBook::from_catalog(&world.affiliate_apps);
        let ds = &artifacts.dataset;
        let all_unique = ds.unique_offers();
        Table4::with_offer_stats(ds, |iip| {
            let offers: Vec<_> = all_unique.iter().filter(|o| o.iip == iip).collect();
            let payouts: Vec<Usd> = offers.iter().filter_map(|o| offer_usd(&book, o)).collect();
            let no_activity = offers
                .iter()
                .filter(|o| classify_description(&o.raw.description) == OfferType::NoActivity)
                .count();
            (payouts, no_activity, offers.len())
        })
    }

    /// Computes the per-IIP summary from the streaming offer digest —
    /// classification and payout normalization already happened at
    /// fold time, so the offer side never re-reads a description.
    /// Byte-identical to [`Table4::run`].
    pub fn run_incremental(artifacts: &WildArtifacts) -> Table4 {
        let aggs = &artifacts.aggregates;
        Table4::with_offer_stats(&artifacts.dataset, |iip| {
            let mut payouts = Vec::new();
            let (mut no_activity, mut total) = (0usize, 0usize);
            for o in aggs.offers().filter(|o| o.iip == iip) {
                total += 1;
                if o.no_activity {
                    no_activity += 1;
                }
                if let Some(usd) = o.usd {
                    payouts.push(usd);
                }
            }
            (payouts, no_activity, total)
        })
    }

    /// Shared body: the profile/campaign side reads the dataset's live
    /// symbol indices either way; `offer_stats` supplies the
    /// offer-derived columns (arrival-order payouts, no-activity
    /// count, offer count) per platform.
    fn with_offer_stats(
        ds: &iiscope_monitor::Dataset,
        offer_stats: impl Fn(IipId) -> (Vec<Usd>, usize, usize),
    ) -> Table4 {
        let order = [
            IipId::RankApp,
            IipId::AyetStudios,
            IipId::Fyber,
            IipId::AdscendMedia,
            IipId::AdGem,
            IipId::HangMyAds,
            IipId::OfferToro,
        ];
        let rows = order
            .into_iter()
            .map(|iip| {
                let (payouts, no_activity, offer_count) = offer_stats(iip);
                // Sym-order iteration: every aggregate below is either
                // a set re-collect or sorted before use, so symbol
                // order never reaches the output.
                let packages = ds.iip_syms(iip);
                let mut developers = BTreeSet::new();
                let mut countries = BTreeSet::new();
                let mut genres = BTreeSet::new();
                let mut installs = Vec::new();
                let mut ages = Vec::new();
                for sym in packages.iter() {
                    let Some(profile) = ds.first_profile_sym(sym) else {
                        continue;
                    };
                    developers.insert(profile.developer_id);
                    countries.insert(profile.developer_country.as_str());
                    genres.insert(profile.genre_id.as_str());
                    installs.push(profile.min_installs);
                    if let Some(obs) = ds.campaign(sym) {
                        let start_day = obs.first_seen.days();
                        ages.push(start_day.saturating_sub(profile.released_day));
                    }
                }
                installs.sort_unstable();
                ages.sort_unstable();
                let median = |v: &[u64]| {
                    if v.is_empty() {
                        0
                    } else {
                        v[(v.len() - 1) / 2]
                    }
                };
                Table4Row {
                    iip,
                    median_payout: Usd::median(&payouts),
                    no_activity_share: if offer_count == 0 {
                        0.0
                    } else {
                        no_activity as f64 / offer_count as f64
                    },
                    apps: packages.len(),
                    developers: developers.len(),
                    countries: countries.len(),
                    genres: genres.len(),
                    median_installs: median(&installs),
                    median_age_days: median(&ages),
                }
            })
            .collect();
        Table4 { rows }
    }

    /// Row accessor.
    pub fn row(&self, iip: IipId) -> &Table4Row {
        self.rows
            .iter()
            .find(|r| r.iip == iip)
            .expect("all IIPs present")
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "IIP",
            "Type",
            "MedPayout",
            "NoAct%",
            "Apps",
            "Devs",
            "Countries",
            "Genres",
            "MedInstalls",
            "MedAge(d)",
        ]);
        for r in &self.rows {
            t.row([
                r.iip.name().to_string(),
                if r.iip.is_vetted() {
                    "Vetted"
                } else {
                    "Unvetted"
                }
                .to_string(),
                r.median_payout.to_string(),
                pct(r.no_activity_share),
                r.apps.to_string(),
                r.developers.to_string(),
                r.countries.to_string(),
                r.genres.to_string(),
                r.median_installs.to_string(),
                r.median_age_days.to_string(),
            ]);
        }
        format!(
            "Table 4: per-IIP summary of offers and advertised apps\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn shape_matches_paper() {
        let shared = testworld::shared();
        let t = Table4::run(&shared.world, &shared.artifacts);
        assert_eq!(t.rows.len(), 7);

        // RankApp: 100% no-activity, the cheapest payouts.
        let rankapp = t.row(IipId::RankApp);
        assert!(
            rankapp.no_activity_share > 0.99,
            "{}",
            rankapp.no_activity_share
        );
        let fyber = t.row(IipId::Fyber);
        assert!(
            fyber.no_activity_share < 0.5,
            "Fyber is activity-heavy, got {}",
            fyber.no_activity_share
        );
        assert!(fyber.median_payout > rankapp.median_payout);

        // Vetted apps are bigger and older than unvetted ones.
        assert!(
            fyber.median_installs > 100 * rankapp.median_installs.max(1),
            "installs {} vs {}",
            fyber.median_installs,
            rankapp.median_installs
        );
        assert!(
            fyber.median_age_days > 3 * rankapp.median_age_days.max(1),
            "ages {} vs {}",
            fyber.median_age_days,
            rankapp.median_age_days
        );

        // Developers ≈ apps (the paper: 378 apps / 319 devs on Fyber).
        for r in &t.rows {
            if r.apps > 0 {
                assert!(r.developers <= r.apps);
                assert!(
                    r.developers * 2 >= r.apps,
                    "{}: {} devs / {} apps",
                    r.iip,
                    r.developers,
                    r.apps
                );
                assert!(r.countries >= 1);
                assert!(r.genres >= 1);
            }
        }

        let rendered = t.render();
        assert!(rendered.contains("RankApp"));
        assert!(rendered.contains("MedInstalls"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        let batch = Table4::run(&shared.world, &shared.artifacts);
        let inc = Table4::run_incremental(&shared.artifacts);
        assert_eq!(inc, batch);
        assert_eq!(inc.render(), batch.render());
    }
}
