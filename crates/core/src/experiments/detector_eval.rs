//! Extension — the §5.2 detection proposal, evaluated end to end.
//!
//! "Our proposed measurements can provide a ground truth of apps to
//! help train machine learning models in detecting the lockstep
//! behavior of users." Here the monitoring pipeline's observations
//! label the training set (advertised = positive, baseline =
//! negative), features come from Play-internal observables only
//! ([`iiscope_playstore::DetectorSnapshot`]), the model is the
//! from-scratch logistic regression in `iiscope-analysis`, and
//! evaluation is on a held-out split.

use crate::report::{pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::detector::{evaluate, AppFeatures, DetectorMetrics, LockstepDetector};

/// The trained-and-evaluated detector experiment.
#[derive(Debug, Clone)]
pub struct DetectorEval {
    /// Training examples used.
    pub train_size: usize,
    /// Held-out examples used.
    pub test_size: usize,
    /// Held-out metrics at threshold 0.5.
    pub metrics: DetectorMetrics,
    /// The trained model.
    pub detector: LockstepDetector,
}

impl DetectorEval {
    /// Builds the labeled dataset, splits it even/odd, trains and
    /// evaluates. Returns `None` when a class is empty (degenerate
    /// worlds).
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Option<DetectorEval> {
        let ds = &artifacts.dataset;
        let advertised = ds.advertised_packages();
        let mut labeled: Vec<(AppFeatures, bool)> = Vec::new();
        // Positives: apps the monitor observed on offer walls.
        for pkg in &advertised {
            if let Some(features) = features_for(world, pkg) {
                labeled.push((features, true));
            }
        }
        // Negatives: the baseline apps (which also have organic install
        // streams, but no campaign-shaped event traffic).
        for b in &world.plan.baseline {
            if let Some(features) = features_for(world, b.package.as_str()) {
                labeled.push((features, false));
            }
        }
        // Deterministic even/odd split.
        let train: Vec<(AppFeatures, bool)> = labeled.iter().step_by(2).copied().collect();
        let test: Vec<(AppFeatures, bool)> = labeled.iter().skip(1).step_by(2).copied().collect();
        let detector = LockstepDetector::train(&train)?;
        let metrics = evaluate(&detector, &test, 0.5);
        Some(DetectorEval {
            train_size: train.len(),
            test_size: test.len(),
            metrics,
            detector,
        })
    }

    /// Rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["Metric", "Value"]);
        t.row([
            "train / test".to_string(),
            format!("{} / {}", self.train_size, self.test_size),
        ]);
        t.row(["precision@0.5".to_string(), pct(self.metrics.precision())]);
        t.row(["recall@0.5".to_string(), pct(self.metrics.recall())]);
        t.row(["F1@0.5".to_string(), format!("{:.3}", self.metrics.f1())]);
        t.row(["AUC".to_string(), format!("{:.3}", self.metrics.auc)]);
        format!(
            "Extension (§5.2 proposal): incentivized-campaign detector\n{}",
            t.render()
        )
    }
}

/// Play-side features for one package. Baseline apps often have zero
/// event installs (pure organic bulk), which is itself the strongest
/// signal — represent them with an all-organic feature vector instead
/// of dropping them.
fn features_for(world: &World, pkg: &str) -> Option<AppFeatures> {
    let app = world.app_id(pkg)?;
    let snap = world.store.detector_snapshot(app)?;
    Some(AppFeatures::from_snapshot(&snap).unwrap_or(AppFeatures {
        block_concentration: 0.0,
        suspicious_rate: 0.0,
        burstiness: 1.0,
        engagement_per_install: 3.0,
        session_minutes: 4.0,
        attributed_share: 0.0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn detector_separates_advertised_from_baseline() {
        let shared = testworld::shared();
        let eval = DetectorEval::run(&shared.world, &shared.artifacts).expect("both classes");
        assert!(eval.train_size > 20);
        assert!(eval.test_size > 20);
        // Campaign-shaped install streams are very separable from
        // organic ones — the point of the paper's proposal.
        assert!(eval.metrics.auc > 0.9, "auc {}", eval.metrics.auc);
        assert!(eval.metrics.f1() > 0.8, "f1 {}", eval.metrics.f1());
        assert!(eval.render().contains("AUC"));
    }
}
