//! Table 7 — "Developers of mobile apps raising funding after
//! campaigns using vetted and unvetted IIPs compared with baseline
//! apps" (§4.3.3).
//!
//! The pipeline matches each app's *crawled* developer identity (name,
//! website) against the Crunchbase snapshot — unmatched developers are
//! simply out of the comparison, exactly as in the paper — and then
//! checks for funding rounds closing after the campaign window.

use crate::experiments::common::baseline_window;
use crate::report::{count_pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::{chi2_2x2, Chi2Result};
use iiscope_types::{SimDuration, SimTime};

/// Days past the campaign end the funding check extends (the paper's
/// Crunchbase snapshot was taken a few months after the study).
pub const FUNDING_HORIZON_DAYS: u64 = 120;

/// One app-set row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table7Row {
    /// Matched apps that raised after their window.
    pub funded: u64,
    /// Matched apps that did not.
    pub not_funded: u64,
    /// Apps that could not be matched in Crunchbase.
    pub unmatched: u64,
}

impl Table7Row {
    /// Matched apps.
    pub fn total(&self) -> u64 {
        self.funded + self.not_funded
    }

    /// Funding rate among matched apps.
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.funded as f64 / self.total() as f64
        }
    }

    /// Match rate including unmatched apps.
    pub fn match_rate(&self) -> f64 {
        let all = self.total() + self.unmatched;
        if all == 0 {
            0.0
        } else {
            self.total() as f64 / all as f64
        }
    }
}

/// The reproduced Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// Baseline apps.
    pub baseline: Table7Row,
    /// Vetted-advertised apps.
    pub vetted: Table7Row,
    /// Unvetted-advertised apps.
    pub unvetted: Table7Row,
    /// χ² vetted vs baseline.
    pub chi2_vetted: Option<Chi2Result>,
    /// χ² unvetted vs baseline.
    pub chi2_unvetted: Option<Chi2Result>,
}

impl Table7 {
    /// Computes the table, deriving the baseline window from the batch
    /// (name-sorted observation list) average — the byte-parity oracle
    /// for [`Table7::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table7 {
        let avg = crate::experiments::common::avg_campaign_days(&artifacts.dataset);
        Table7::run_with_avg(world, artifacts, avg)
    }

    /// Incremental-report variant: identical numbers, with the average
    /// campaign duration from the symbol-side fold shared by Tables
    /// 5–7 instead of a re-sorted observation list.
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Table7 {
        let avg = crate::experiments::common::avg_campaign_days_sym(&artifacts.dataset);
        Table7::run_with_avg(world, artifacts, avg)
    }

    /// Computes the table with a caller-supplied average campaign
    /// duration (the baseline observation window length).
    pub fn run_with_avg(world: &World, artifacts: &WildArtifacts, avg_days: u64) -> Table7 {
        let ds = &artifacts.dataset;
        let check_sym = |sym: iiscope_types::Sym, after: SimTime| -> Option<bool> {
            let profile = ds.first_profile_sym(sym)?;
            let website = if profile.developer_website.is_empty() {
                None
            } else {
                Some(profile.developer_website.as_str())
            };
            let company = world
                .crunchbase
                .match_developer(&profile.developer_name, website)?;
            Some(
                company.raised_between(after, after + SimDuration::from_days(FUNDING_HORIZON_DAYS)),
            )
        };
        let check = |pkg: &str, after: SimTime| check_sym(ds.pkg_sym(pkg)?, after);
        let class_row = |vetted: bool| -> Table7Row {
            let mut row = Table7Row {
                funded: 0,
                not_funded: 0,
                unmatched: 0,
            };
            for sym in ds.class_syms(vetted).iter() {
                let Some(obs) = ds.campaign(sym) else {
                    continue;
                };
                match check_sym(sym, obs.last_seen) {
                    Some(true) => row.funded += 1,
                    Some(false) => row.not_funded += 1,
                    None => row.unmatched += 1,
                }
            }
            row
        };
        let vetted = class_row(true);
        let unvetted = class_row(false);

        let mut baseline = Table7Row {
            funded: 0,
            not_funded: 0,
            unmatched: 0,
        };
        for b in &world.plan.baseline {
            let pkg = b.package.as_str();
            let Some((from, _)) = baseline_window(ds, pkg, avg_days) else {
                continue;
            };
            match check(pkg, SimTime::from_days(from)) {
                Some(true) => baseline.funded += 1,
                Some(false) => baseline.not_funded += 1,
                None => baseline.unmatched += 1,
            }
        }

        let chi2 = |row: &Table7Row| {
            chi2_2x2(
                baseline.not_funded as f64,
                baseline.funded as f64,
                row.not_funded as f64,
                row.funded as f64,
            )
        };
        Table7 {
            chi2_vetted: chi2(&vetted),
            chi2_unvetted: chi2(&unvetted),
            baseline,
            vetted,
            unvetted,
        }
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["App Set", "Funding Raised", "No Funding", "Unmatched"]);
        let mut add = |label: &str, r: &Table7Row| {
            t.row([
                format!("{label} (N = {})", r.total()),
                count_pct(r.funded, r.total()),
                count_pct(r.not_funded, r.total()),
                r.unmatched.to_string(),
            ]);
        };
        add("Baseline", &self.baseline);
        add("Vetted", &self.vetted);
        add("Unvetted", &self.unvetted);
        let fmt_chi = |c: &Option<Chi2Result>| match c {
            Some(r) => format!("chi2 = {:.2}, p = {:.3e}", r.statistic, r.p_value),
            None => "test undefined".to_string(),
        };
        format!(
            "Table 7: funding raised after campaigns (Crunchbase-matched apps)\n{}\nvetted vs baseline: {}\nunvetted vs baseline: {}\n",
            t.render(),
            fmt_chi(&self.chi2_vetted),
            fmt_chi(&self.chi2_unvetted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn shape_matches_paper() {
        let shared = testworld::shared();
        let t = Table7::run(&shared.world, &shared.artifacts);

        // Match rates: vetted developers match far more often than
        // unvetted ones (39% vs 15% in the paper) — vetted developers
        // publish websites.
        assert!(
            t.vetted.match_rate() > t.unvetted.match_rate(),
            "match rates {} vs {}",
            t.vetted.match_rate(),
            t.unvetted.match_rate()
        );
        assert!(t.vetted.total() + t.unvetted.total() > 0, "nothing matched");

        let rendered = t.render();
        assert!(rendered.contains("Funding Raised"));
        assert!(rendered.contains("Unmatched"));
    }

    /// The measured funded counts must equal the plan's ground truth
    /// over the observed, matched apps — the pipeline (crawl → match →
    /// round-window check) loses and invents nothing. The paper-shape
    /// *rates* (vetted ≈ 2.6× baseline, vetted significant, unvetted
    /// not) are asserted at paper scale by the repro run, where N is
    /// large enough for them to be stable.
    #[test]
    fn pipeline_matches_ground_truth() {
        let shared = testworld::shared();
        let t = Table7::run(&shared.world, &shared.artifacts);
        let ds = &shared.artifacts.dataset;
        let expect = |vetted: bool| -> (u64, u64) {
            let observed = ds.packages_by_class(vetted);
            let mut funded = 0;
            let mut matched = 0;
            for app in &shared.world.plan.apps {
                if !observed.contains(app.package.as_str()) {
                    continue;
                }
                if app.crunchbase_matched {
                    matched += 1;
                    funded += u64::from(app.raises_funding);
                }
            }
            (matched, funded)
        };
        let (vm, vf) = expect(true);
        assert_eq!(t.vetted.total(), vm, "vetted matched");
        assert_eq!(t.vetted.funded, vf, "vetted funded");
        let (um, uf) = expect(false);
        assert_eq!(t.unvetted.total(), um, "unvetted matched");
        assert_eq!(t.unvetted.funded, uf, "unvetted funded");
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Table7::run_incremental(&shared.world, &shared.artifacts),
            Table7::run(&shared.world, &shared.artifacts)
        );
    }
}
