//! Table 6 — "Comparing the appearance of advertised apps from vetted
//! and unvetted IIPs with baseline apps in top charts", with §4.3.1's
//! exclusion rule (apps already charting before their campaign are
//! dropped from the comparison).

use crate::experiments::common::baseline_window;
use crate::report::{count_pct, TextTable};
use crate::world::World;
use crate::WildArtifacts;
use iiscope_analysis::{chart_appearance, chart_appearance_sym, chi2_2x2, Chi2Result};

/// One app-set row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table6Row {
    /// Apps that never appeared in a chart during their window.
    pub not_present: u64,
    /// Apps that appeared.
    pub present: u64,
    /// Apps excluded for pre-campaign chart presence.
    pub excluded: u64,
}

impl Table6Row {
    /// Included apps.
    pub fn total(&self) -> u64 {
        self.not_present + self.present
    }

    /// Appearance rate among included apps.
    pub fn rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.present as f64 / self.total() as f64
        }
    }
}

/// The reproduced Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Baseline apps.
    pub baseline: Table6Row,
    /// Vetted-advertised apps.
    pub vetted: Table6Row,
    /// Unvetted-advertised apps.
    pub unvetted: Table6Row,
    /// χ² vetted vs baseline.
    pub chi2_vetted: Option<Chi2Result>,
    /// χ² unvetted vs baseline.
    pub chi2_unvetted: Option<Chi2Result>,
}

impl Table6 {
    /// Computes the table, deriving the baseline window from the batch
    /// (name-sorted observation list) average — the byte-parity oracle
    /// for [`Table6::run_incremental`].
    pub fn run(world: &World, artifacts: &WildArtifacts) -> Table6 {
        let avg = crate::experiments::common::avg_campaign_days(&artifacts.dataset);
        Table6::run_with_avg(world, artifacts, avg)
    }

    /// Incremental-report variant: identical numbers, with the average
    /// campaign duration from the symbol-side fold shared by Tables
    /// 5–7 instead of a re-sorted observation list.
    pub fn run_incremental(world: &World, artifacts: &WildArtifacts) -> Table6 {
        let avg = crate::experiments::common::avg_campaign_days_sym(&artifacts.dataset);
        Table6::run_with_avg(world, artifacts, avg)
    }

    /// Computes the table with a caller-supplied average campaign
    /// duration (the baseline observation window length).
    pub fn run_with_avg(world: &World, artifacts: &WildArtifacts, avg_days: u64) -> Table6 {
        let ds = &artifacts.dataset;
        // Sym-order iteration over the class bitsets; the row is a
        // triple of counters, so iteration order is invisible.
        let class_row = |vetted: bool| -> Table6Row {
            let mut row = Table6Row {
                not_present: 0,
                present: 0,
                excluded: 0,
            };
            for sym in ds.class_syms(vetted).iter() {
                let Some(obs) = ds.campaign(sym) else {
                    continue;
                };
                match chart_appearance_sym(ds, sym, obs.first_seen.days(), obs.last_seen.days()) {
                    Some(true) => row.present += 1,
                    Some(false) => row.not_present += 1,
                    None => row.excluded += 1,
                }
            }
            row
        };
        let vetted = class_row(true);
        let unvetted = class_row(false);

        let mut baseline = Table6Row {
            not_present: 0,
            present: 0,
            excluded: 0,
        };
        for b in &world.plan.baseline {
            let pkg = b.package.as_str();
            let Some((from, to)) = baseline_window(ds, pkg, avg_days) else {
                continue;
            };
            match chart_appearance(ds, pkg, from, to) {
                Some(true) => baseline.present += 1,
                Some(false) => baseline.not_present += 1,
                None => baseline.excluded += 1,
            }
        }

        let chi2 = |row: &Table6Row| {
            chi2_2x2(
                baseline.not_present as f64,
                baseline.present as f64,
                row.not_present as f64,
                row.present as f64,
            )
        };
        Table6 {
            chi2_vetted: chi2(&vetted),
            chi2_unvetted: chi2(&unvetted),
            baseline,
            vetted,
            unvetted,
        }
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["App Set", "Not Present", "Present", "Excluded"]);
        let mut add = |label: &str, r: &Table6Row| {
            t.row([
                format!("{label} (N = {})", r.total()),
                count_pct(r.not_present, r.total()),
                count_pct(r.present, r.total()),
                r.excluded.to_string(),
            ]);
        };
        add("Baseline", &self.baseline);
        add("Vetted", &self.vetted);
        add("Unvetted", &self.unvetted);
        let fmt_chi = |c: &Option<Chi2Result>| match c {
            Some(r) => format!("chi2 = {:.2}, p = {:.3e}", r.statistic, r.p_value),
            None => "test undefined".to_string(),
        };
        format!(
            "Table 6: top-chart appearances during campaign windows\n{}\nvetted vs baseline: {}\nunvetted vs baseline: {}\n",
            t.render(),
            fmt_chi(&self.chi2_vetted),
            fmt_chi(&self.chi2_unvetted),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::testworld;

    #[test]
    fn shape_matches_paper() {
        let shared = testworld::shared();
        let t = Table6::run(&shared.world, &shared.artifacts);
        assert!(t.vetted.total() > 10);
        assert!(t.unvetted.total() > 10);
        assert!(t.baseline.total() > 10);

        // The paper's key asymmetry: vetted campaigns move charts,
        // unvetted ones don't.
        assert!(
            t.vetted.rate() > t.unvetted.rate(),
            "vetted {} vs unvetted {}",
            t.vetted.rate(),
            t.unvetted.rate()
        );
        assert!(
            t.vetted.rate() >= t.baseline.rate(),
            "vetted {} vs baseline {}",
            t.vetted.rate(),
            t.baseline.rate()
        );
        // Chart presence is rare everywhere (2.5–7.5% in Table 6).
        assert!(t.vetted.rate() < 0.5);

        let rendered = t.render();
        assert!(rendered.contains("Excluded"));
    }

    #[test]
    fn incremental_matches_batch() {
        let shared = testworld::shared();
        assert_eq!(
            Table6::run_incremental(&shared.world, &shared.artifacts),
            Table6::run(&shared.world, &shared.artifacts)
        );
    }
}
