//! World-facing route multiplexer for the socket server.
//!
//! The simulation reaches each service by hostname (the store at its
//! own IP, every wall at `wall.<slug>.iiscope`); an external TCP
//! client talks to one listener and cannot resolve sim hostnames, so
//! the server multiplexes by path instead:
//!
//! * `/store/apps/details`, `/store/charts`, `/apk` — the Play-store
//!   frontend, verbatim;
//! * `/wall/<slug>/offers?...` — rewritten to the wall's own
//!   [`iiscope_iip::OFFERS_PATH`] and dispatched to that IIP's
//!   handler, so query handling (affiliate gate, paging, geo filter)
//!   is exactly the wall the milkers hit.
//!
//! Every dispatch is a pure read of world state — serving mid-run
//! cannot perturb the simulation's byte-identical output.

use iiscope_iip::{OfferWallHandler, OFFERS_PATH};
use iiscope_playstore::frontend::{StoreFrontend, APK_PATH};
use iiscope_types::IipId;
use iiscope_wire::http::RequestCtx;
use iiscope_wire::{Handler, Request, Response};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Path-multiplexed view of one world's public HTTP surface.
pub struct WorldRouter {
    store: StoreFrontend,
    walls: BTreeMap<IipId, Arc<OfferWallHandler>>,
}

impl WorldRouter {
    /// Routes over the given store frontend and wall handlers.
    pub fn new(store: StoreFrontend, walls: BTreeMap<IipId, Arc<OfferWallHandler>>) -> WorldRouter {
        WorldRouter { store, walls }
    }
}

impl Handler for WorldRouter {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        let path = req.path();
        if path == APK_PATH || path.starts_with("/store/") {
            return self.store.handle(req, ctx);
        }
        if let Some(rest) = path.strip_prefix("/wall/") {
            if let Some((slug, tail)) = rest.split_once('/') {
                if let (Some(iip), true) = (IipId::from_slug(slug), tail == &OFFERS_PATH[1..]) {
                    // Rewrite to the wall's native route, query intact.
                    let mut inner = req.clone();
                    inner.target = match req.target.split_once('?') {
                        Some((_, query)) => format!("{OFFERS_PATH}?{query}"),
                        None => OFFERS_PATH.to_string(),
                    };
                    return self.walls[&iip].handle(&inner, ctx);
                }
            }
        }
        Response::not_found()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
    use iiscope_types::{Country, SeedFork};
    use iiscope_wire::Json;

    fn ctx(world: &World) -> RequestCtx {
        RequestCtx {
            peer: PeerInfo {
                addr: HostAddr {
                    ip: std::net::Ipv4Addr::new(203, 0, 113, 9),
                    asn: AsnId(64512),
                    asn_kind: AsnKind::Eyeball,
                    country: Country::Us,
                },
                opened_at: world.study_start(),
                link: SeedFork::new(99),
            },
            now: world.study_start(),
        }
    }

    fn tiny_world() -> World {
        let mut cfg = WorldConfig::small(7);
        cfg.advertised_apps = 5;
        cfg.baseline_apps = 3;
        World::build(cfg).unwrap()
    }

    #[test]
    fn routes_store_walls_and_rejects_the_rest() {
        let world = tiny_world();
        let router = world.serve_router();
        let ctx = ctx(&world);

        let honey = format!("/store/apps/details?id={}", iiscope_honeyapp::HONEY_PACKAGE);
        assert_eq!(router.handle(&Request::get(honey), &ctx).status, 200);
        assert_eq!(
            router
                .handle(
                    &Request::get("/store/charts?chart=topselling_free&n=5"),
                    &ctx
                )
                .status,
            200
        );
        let apk = format!("/apk?id={}", iiscope_honeyapp::HONEY_PACKAGE);
        assert_eq!(router.handle(&Request::get(apk), &ctx).status, 200);

        // Wall rewrite carries the query through to the IIP handler.
        let wall = "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps";
        let resp = router.handle(&Request::get(wall), &ctx);
        assert_eq!(resp.status, 200);
        assert!(resp.body_json().unwrap().get("ofw").is_some());
        // Missing affiliate is the wall's own 400, unregistered its 403.
        assert_eq!(
            router
                .handle(&Request::get("/wall/fyber/offers"), &ctx)
                .status,
            400
        );
        assert_eq!(
            router
                .handle(
                    &Request::get("/wall/fyber/offers?affiliate=com.not.reg"),
                    &ctx
                )
                .status,
            403
        );

        assert_eq!(
            router
                .handle(&Request::get("/wall/nope/offers"), &ctx)
                .status,
            404
        );
        assert_eq!(
            router.handle(&Request::get("/wall/fyber"), &ctx).status,
            404
        );
        assert_eq!(router.handle(&Request::get("/elsewhere"), &ctx).status, 404);
    }

    #[test]
    fn wall_dispatch_matches_direct_handler_bytes() {
        let world = tiny_world();
        let router = world.serve_router();
        let ctx = ctx(&world);
        let via_router = router.handle(
            &Request::get("/wall/offertoro/offers?affiliate=com.mobvantage.cashforapps&page=0"),
            &ctx,
        );
        let direct = world.walls[&IipId::OfferToro].handle(
            &Request::get("/offers?affiliate=com.mobvantage.cashforapps&page=0"),
            &ctx,
        );
        assert_eq!(via_router.body_json().unwrap(), direct.body_json().unwrap());
        assert_ne!(via_router.body_json().unwrap(), Json::Null);
    }
}
