//! World-facing route multiplexer for the socket server.
//!
//! The simulation reaches each service by hostname (the store at its
//! own IP, every wall at `wall.<slug>.iiscope`); an external TCP
//! client talks to one listener and cannot resolve sim hostnames, so
//! the server multiplexes by path instead:
//!
//! * `/store/apps/details`, `/store/charts`, `/apk` — the Play-store
//!   frontend, verbatim;
//! * `/wall/<slug>/offers?...` — rewritten to the wall's own
//!   [`iiscope_iip::OFFERS_PATH`] and dispatched to that IIP's
//!   handler, so query handling (affiliate gate, paging, geo filter)
//!   is exactly the wall the milkers hit.
//!
//! Every dispatch is a pure read of world state — serving mid-run
//! cannot perturb the simulation's byte-identical output. That purity
//! is also what makes the render cache sound: a response is a function
//! of `(target, vantage country, sim instant, world version)`, so
//! cached bodies are byte-identical to fresh renders until the
//! simulation advances a day and bumps the version.

use iiscope_iip::{OfferWallHandler, OFFERS_PATH};
use iiscope_playstore::frontend::{StoreFrontend, APK_PATH};
use iiscope_types::{servestats, Country, IipId, SimTime};
use iiscope_wire::http::{Method, RequestCtx};
use iiscope_wire::{Handler, Request, Response};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotone world-state version, bumped by the simulation whenever
/// served state may have changed (each sim-day advance). Cheap to
/// clone and share: the server reads it relaxed on every request, the
/// sim writes it once per day.
#[derive(Clone, Default)]
pub struct WorldVersion(Arc<AtomicU64>);

impl WorldVersion {
    /// A fresh version counter at zero.
    pub fn new() -> WorldVersion {
        WorldVersion::default()
    }

    /// Current version.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Advances the version, invalidating every cached response keyed
    /// to older versions.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

/// Per-router cache counters — instance-local (unlike the process-wide
/// [`servestats`] mirror) so tests can assert on one router's behavior
/// without cross-test pollution.
#[derive(Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl CacheStats {
    /// Responses answered from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cacheable requests that rendered fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times the cache dropped its map on a version change.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

/// Everything a response can depend on besides world state: the full
/// request target (path + query), the synthesized vantage country
/// (walls geo-filter on it), and the server's pinned sim instant
/// (charts snapshot at it).
type CacheKey = (String, Country, SimTime);

/// Rendered responses for one world version. `as_of` names the version
/// the entries were rendered at; a bump makes the whole map stale at
/// once, so invalidation is one `clear`, not per-entry bookkeeping.
struct CacheState {
    as_of: u64,
    map: HashMap<CacheKey, Response>,
}

/// Entry cap — bounds memory on adversarial query-string churn. The
/// legitimate route space (7 walls × pages × a few thousand store
/// targets) fits comfortably; beyond the cap new entries are simply
/// not retained, while retained ones keep serving hits and a version
/// bump still drops the whole map at once.
pub const CACHE_CAP: usize = 8192;

/// Path-multiplexed view of one world's public HTTP surface.
pub struct WorldRouter {
    store: StoreFrontend,
    walls: BTreeMap<IipId, Arc<OfferWallHandler>>,
    cache: Option<RwLock<CacheState>>,
    version: WorldVersion,
    stats: CacheStats,
}

impl WorldRouter {
    /// Routes over the given store frontend and wall handlers, with no
    /// response cache (every request renders fresh).
    pub fn new(store: StoreFrontend, walls: BTreeMap<IipId, Arc<OfferWallHandler>>) -> WorldRouter {
        WorldRouter {
            store,
            walls,
            cache: None,
            version: WorldVersion::new(),
            stats: CacheStats::default(),
        }
    }

    /// Routes with a day-versioned response cache: rendered responses
    /// are retained (the body is an `Arc`-backed `Bytes`, so a hit is
    /// a clone of a pointer, not a re-serialization) until `version`
    /// is bumped.
    pub fn new_cached(
        store: StoreFrontend,
        walls: BTreeMap<IipId, Arc<OfferWallHandler>>,
        version: WorldVersion,
    ) -> WorldRouter {
        WorldRouter {
            store,
            walls,
            cache: Some(RwLock::new(CacheState {
                as_of: version.get(),
                map: HashMap::new(),
            })),
            version,
            stats: CacheStats::default(),
        }
    }

    /// Whether the render cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// This router's cache counters.
    pub fn cache_stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The version handle the cache invalidates on.
    pub fn version(&self) -> &WorldVersion {
        &self.version
    }

    /// Entries currently retained by the render cache (0 uncached).
    pub fn cache_len(&self) -> usize {
        self.cache.as_ref().map_or(0, |c| c.read().map.len())
    }

    /// The actual route dispatch, cache aside.
    fn route(&self, req: &Request, ctx: &RequestCtx) -> Response {
        let path = req.path();
        if path == APK_PATH || path.starts_with("/store/") {
            return self.store.handle(req, ctx);
        }
        if let Some(rest) = path.strip_prefix("/wall/") {
            if let Some((slug, tail)) = rest.split_once('/') {
                if let (Some(iip), true) = (IipId::from_slug(slug), tail == &OFFERS_PATH[1..]) {
                    // Rewrite to the wall's native route, query intact.
                    let mut inner = req.clone();
                    inner.target = match req.target.split_once('?') {
                        Some((_, query)) => format!("{OFFERS_PATH}?{query}"),
                        None => OFFERS_PATH.to_string(),
                    };
                    return self.walls[&iip].handle(&inner, ctx);
                }
            }
        }
        Response::not_found()
    }
}

impl Handler for WorldRouter {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        let Some(cache) = &self.cache else {
            return self.route(req, ctx);
        };
        if req.method != Method::Get {
            // Non-GETs never hit the public read surface; don't let
            // them occupy cache slots.
            return self.route(req, ctx);
        }
        // Pin the version before rendering: if the sim advances a day
        // mid-render, the response must not be retained under either
        // version (it may mix old and new state).
        let v = self.version.get();
        let key: CacheKey = (req.target.clone(), ctx.peer.addr.country, ctx.now);
        {
            let st = cache.read();
            if st.as_of == v {
                if let Some(resp) = st.map.get(&key) {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    servestats::add_cache_hits(1);
                    return resp.clone();
                }
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        servestats::add_cache_misses(1);
        let resp = self.route(req, ctx);
        let mut st = cache.write();
        let cur = self.version.get();
        if st.as_of != cur {
            st.map.clear();
            st.as_of = cur;
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            servestats::add_cache_invalidations(1);
        }
        if cur == v && st.map.len() < CACHE_CAP {
            st.map.insert(key, resp.clone());
        }
        resp
    }

    /// Admission probe: a retained response for `req`, without
    /// rendering on miss. Overload gates call this to exempt cache
    /// hits from shedding; a found entry counts as a hit (it is
    /// served), a miss counts nothing (nothing was rendered).
    fn cached(&self, req: &Request, ctx: &RequestCtx) -> Option<Response> {
        let cache = self.cache.as_ref()?;
        if req.method != Method::Get {
            return None;
        }
        let v = self.version.get();
        let key: CacheKey = (req.target.clone(), ctx.peer.addr.country, ctx.now);
        let st = cache.read();
        if st.as_of == v {
            if let Some(resp) = st.map.get(&key) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                servestats::add_cache_hits(1);
                return Some(resp.clone());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
    use iiscope_types::{Country, SeedFork};
    use iiscope_wire::Json;

    fn ctx(world: &World) -> RequestCtx {
        RequestCtx {
            peer: PeerInfo {
                addr: HostAddr {
                    ip: std::net::Ipv4Addr::new(203, 0, 113, 9),
                    asn: AsnId(64512),
                    asn_kind: AsnKind::Eyeball,
                    country: Country::Us,
                },
                opened_at: world.study_start(),
                link: SeedFork::new(99),
            },
            now: world.study_start(),
        }
    }

    fn tiny_world() -> World {
        let mut cfg = WorldConfig::small(7);
        cfg.advertised_apps = 5;
        cfg.baseline_apps = 3;
        World::build(cfg).unwrap()
    }

    #[test]
    fn routes_store_walls_and_rejects_the_rest() {
        let world = tiny_world();
        let router = world.serve_router();
        let ctx = ctx(&world);

        let honey = format!("/store/apps/details?id={}", iiscope_honeyapp::HONEY_PACKAGE);
        assert_eq!(router.handle(&Request::get(honey), &ctx).status, 200);
        assert_eq!(
            router
                .handle(
                    &Request::get("/store/charts?chart=topselling_free&n=5"),
                    &ctx
                )
                .status,
            200
        );
        let apk = format!("/apk?id={}", iiscope_honeyapp::HONEY_PACKAGE);
        assert_eq!(router.handle(&Request::get(apk), &ctx).status, 200);

        // Wall rewrite carries the query through to the IIP handler.
        let wall = "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps";
        let resp = router.handle(&Request::get(wall), &ctx);
        assert_eq!(resp.status, 200);
        assert!(resp.body_json().unwrap().get("ofw").is_some());
        // Missing affiliate is the wall's own 400, unregistered its 403.
        assert_eq!(
            router
                .handle(&Request::get("/wall/fyber/offers"), &ctx)
                .status,
            400
        );
        assert_eq!(
            router
                .handle(
                    &Request::get("/wall/fyber/offers?affiliate=com.not.reg"),
                    &ctx
                )
                .status,
            403
        );

        assert_eq!(
            router
                .handle(&Request::get("/wall/nope/offers"), &ctx)
                .status,
            404
        );
        assert_eq!(
            router.handle(&Request::get("/wall/fyber"), &ctx).status,
            404
        );
        assert_eq!(router.handle(&Request::get("/elsewhere"), &ctx).status, 404);
    }

    #[test]
    fn cache_serves_identical_bytes_and_invalidates_on_bump() {
        let world = tiny_world();
        let cached = world.serve_router();
        let fresh = world.serve_router_uncached();
        assert!(cached.cache_enabled());
        assert!(!fresh.cache_enabled());
        let ctx = ctx(&world);

        let targets = [
            format!("/store/apps/details?id={}", iiscope_honeyapp::HONEY_PACKAGE),
            "/store/charts?chart=topselling_free&n=5".to_string(),
            format!("/apk?id={}", iiscope_honeyapp::HONEY_PACKAGE),
            "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps".to_string(),
            "/wall/fyber/offers".to_string(),
            "/elsewhere".to_string(),
        ];
        for t in &targets {
            let first = cached.handle(&Request::get(t.clone()), &ctx);
            let again = cached.handle(&Request::get(t.clone()), &ctx);
            let reference = fresh.handle(&Request::get(t.clone()), &ctx);
            assert_eq!(first.encode(), reference.encode(), "{t}");
            assert_eq!(again.encode(), reference.encode(), "{t}");
        }
        // Second pass hit for every target; the fresh router never
        // touched a cache.
        assert_eq!(cached.cache_stats().hits(), targets.len() as u64);
        assert_eq!(cached.cache_stats().misses(), targets.len() as u64);
        assert_eq!(fresh.cache_stats().hits() + fresh.cache_stats().misses(), 0);

        // A day advance drops every entry: same requests miss again.
        world.day_version.bump();
        for t in &targets {
            cached.handle(&Request::get(t.clone()), &ctx);
        }
        assert_eq!(cached.cache_stats().hits(), targets.len() as u64);
        assert_eq!(cached.cache_stats().misses(), 2 * targets.len() as u64);
        assert_eq!(cached.cache_stats().invalidations(), 1);
    }

    #[test]
    fn cache_keys_on_country_and_posts_bypass() {
        let world = tiny_world();
        let router = world.serve_router();
        let mut us = ctx(&world);
        us.peer.addr.country = Country::Us;
        let mut other = ctx(&world);
        other.peer.addr.country = Country::In;

        let wall = "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps";
        let a = router.handle(&Request::get(wall), &us);
        let b = router.handle(&Request::get(wall), &other);
        // Different vantage countries are distinct cache slots (the
        // geo filter changes the body); both were misses.
        assert_eq!(router.cache_stats().misses(), 2);
        assert_eq!(a.status, 200);
        assert_eq!(b.status, 200);

        // POSTs never populate or read the cache.
        let before = router.cache_stats().misses();
        let mut post = Request::get("/healthz-ish");
        post.method = iiscope_wire::http::Method::Post;
        router.handle(&post, &us);
        router.handle(&post, &us);
        assert_eq!(router.cache_stats().misses(), before);
    }

    #[test]
    fn wall_dispatch_matches_direct_handler_bytes() {
        let world = tiny_world();
        let router = world.serve_router();
        let ctx = ctx(&world);
        let via_router = router.handle(
            &Request::get("/wall/offertoro/offers?affiliate=com.mobvantage.cashforapps&page=0"),
            &ctx,
        );
        let direct = world.walls[&IipId::OfferToro].handle(
            &Request::get("/offers?affiliate=com.mobvantage.cashforapps&page=0"),
            &ctx,
        );
        assert_eq!(via_router.body_json().unwrap(), direct.body_json().unwrap());
        assert_ne!(via_router.body_json().unwrap(), Json::Null);
    }
}
