//! The deterministic chaos harness.
//!
//! Every hop of the measurement pipeline — telemetry uploads, proxied
//! milking, Play crawls — crosses the fault-injected netsim substrate,
//! and every fault a [`FaultPlan`] can schedule (random and bursty
//! loss, outage windows, stalls, truncation, garbage, slow links) is a
//! pure function of `(seed, plan)`: link RNGs fork from the client's
//! own seed lineage and fault delays accrue to connection-local clock
//! skew, never to the shared clock. That makes *any* failure found by
//! a chaos sweep replayable from two values.
//!
//! This module packages the sweep: a canonical adversarial fault grid
//! ([`fault_grid`]), a one-call study runner ([`run_chaos`]) returning
//! a digestible [`ChaosOutcome`], and a minimal monotone-degradation
//! scenario ([`telemetry_survival`]) whose success set provably
//! shrinks as the drop rate grows. `tests/chaos.rs` sweeps the grid ×
//! seed matrix and checks five invariants: no panics, sim-time
//! containment, byte-identical reruns at equal seeds, monotone
//! degradation, and report computability at every grid point.

use crate::checkpoint;
use crate::config::WorldConfig;
use crate::wildsim::{CheckpointPolicy, WildRunOptions};
use crate::world::World;
use iiscope_honeyapp::app::telemetry_payload;
use iiscope_honeyapp::{Collector, TelemetryEvent};
use iiscope_monitor::export::{charts_csv, offers_csv, profiles_csv};
use iiscope_netsim::{AsnId, AsnKind, FaultPlan, GilbertElliott, HostAddr, Network, OutageWindow};
use iiscope_types::time::study;
use iiscope_types::{
    chaosstats, wirestats, Country, DeviceId, Error, Result, SeedFork, SimDuration,
};
use iiscope_wire::server::HttpsFactory;
use iiscope_wire::tls::{CertAuthority, ServerIdentity, TrustStore};
use iiscope_wire::HttpClient;
use std::net::Ipv4Addr;
use std::path::Path;
use std::sync::Arc;

/// The condensed result of one chaos run — everything the invariant
/// layer compares across seeds, plans and worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// Honey installs delivered across the three campaigns.
    pub honey_delivered: u64,
    /// Distinct install ids the collector heard from (reply-direction
    /// faults cause duplicate uploads, so raw record counts are not
    /// comparable — distinct ids are).
    pub telemetry_installs: usize,
    /// Raw offer observations the wild study milked.
    pub offer_observations: usize,
    /// Profile snapshots the crawler landed.
    pub profile_snapshots: usize,
    /// APKs downloaded for the static analysis.
    pub apks: usize,
    /// FNV-1a digest of the full rendered report — byte-identity of
    /// two runs collapses to equality of this (and the counts above).
    pub report_digest: u64,
    /// Shared-clock day the world ended on. Faults consume only
    /// connection-local skew, so this is bounded by the schedule, not
    /// by the fault plan.
    pub end_clock_days: u64,
}

/// The world configuration chaos sweeps run under: the `small` preset
/// shrunk further so a full grid × seed matrix stays test-suite sized.
pub fn chaos_config(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.monitoring_days = 8;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 20;
    cfg.baseline_apps = 8;
    cfg.honey_purchase = 40;
    cfg
}

/// The canonical adversarial fault grid: one plan per fault family,
/// each aggressive enough to exercise its failure path on a small
/// world but survivable by the hardened pipeline.
pub fn fault_grid() -> Vec<(&'static str, FaultPlan)> {
    let start = study::STUDY_START;
    vec![
        ("drop-light", FaultPlan::lossy(0.05, 0.01)),
        ("drop-heavy", FaultPlan::lossy(0.18, 0.03)),
        (
            "burst",
            FaultPlan::perfect().with_burst(GilbertElliott::new(0.05, 0.30, 0.005, 0.60)),
        ),
        (
            "outage",
            FaultPlan::lossy(0.02, 0.0).with_outage(OutageWindow::new(
                start + SimDuration::from_days(2),
                start + SimDuration::from_days(3),
            )),
        ),
        (
            "stall-truncate",
            FaultPlan::perfect().with_stall(0.04).with_truncation(0.04),
        ),
        (
            "garbage-slowlink",
            FaultPlan::perfect()
                .with_garbage(0.03)
                .with_bandwidth(200_000),
        ),
    ]
}

/// Builds a chaos-sized world, arms `plan` on every new connection,
/// runs both studies and the full report, and condenses the run into a
/// [`ChaosOutcome`]. The world build itself runs clean — faults start
/// with the studies, like the robustness suite.
pub fn run_chaos(seed: u64, plan: &FaultPlan, parallelism: usize) -> Result<ChaosOutcome> {
    let mut cfg = chaos_config(seed);
    cfg.parallelism = parallelism;
    let world = World::build(cfg)?;
    world.net.set_default_fault(plan.clone());
    let honey = world.run_honey_study(world.study_start())?;
    let artifacts = world.run_wild_study()?;
    let honey_delivered = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    let report = crate::experiments::full_report(&world, &artifacts, honey);
    Ok(ChaosOutcome {
        honey_delivered,
        telemetry_installs: world.collector.distinct_installs(),
        offer_observations: artifacts.offer_observations,
        profile_snapshots: artifacts.dataset.profiles().len(),
        apks: artifacts.apks.len(),
        report_digest: fnv64(report.as_bytes()),
        end_clock_days: world.net.clock().now().days(),
    })
}

/// Deterministic kill-point injection: the wild study terminates with
/// [`Error::Interrupted`] at the top of sim day `kill_day`, before
/// anything of that day (including the clock advance) has run — the
/// closest simulable analogue of `kill -9` at a day boundary. Paired
/// with checkpointing and resume, it turns "does the pipeline survive
/// a crash at day k?" into a pure function of `(seed, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Sim day the process dies at.
    pub kill_day: u64,
}

/// Digest of everything a run publishes: the rendered report and the
/// three exported CSVs. Two runs are byte-identical iff their
/// `RunDigest`s are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// FNV-1a of the full rendered report.
    pub report: u64,
    /// FNV-1a of `offers.csv`.
    pub offers_csv: u64,
    /// FNV-1a of `profiles.csv`.
    pub profiles_csv: u64,
    /// FNV-1a of `charts.csv`.
    pub charts_csv: u64,
}

fn reset_counters() {
    chaosstats::reset();
    wirestats::reset();
}

fn digest_world(
    world: &World,
    artifacts: &crate::WildArtifacts,
    honey: crate::HoneyStudy,
) -> RunDigest {
    let report = crate::experiments::full_report(world, artifacts, honey);
    RunDigest {
        report: fnv64(report.as_bytes()),
        offers_csv: fnv64(offers_csv(&artifacts.dataset).as_bytes()),
        profiles_csv: fnv64(profiles_csv(&artifacts.dataset).as_bytes()),
        charts_csv: fnv64(charts_csv(&artifacts.dataset).as_bytes()),
    }
}

/// Runs the full pipeline straight through (no crash, no
/// checkpointing) and digests its published output. The baseline every
/// crash-resume run is compared against.
pub fn straight_digest(cfg: WorldConfig) -> Result<RunDigest> {
    reset_counters();
    let world = World::build(cfg)?;
    let honey = world.run_honey_study(world.study_start())?;
    let artifacts = world.run_wild_study()?;
    Ok(digest_world(&world, &artifacts, honey))
}

/// The crash-resume harness: runs the pipeline with checkpointing
/// until a simulated process death at `kill_day`, then re-enters like
/// a fresh process would — rebuild the world from config, rerun the
/// honey study, load the newest valid snapshot from `dir` (corrupt
/// ones are skipped), resume the wild study — and digests the output.
/// A crash at day 0 leaves no snapshot and resumes from scratch.
///
/// The hard invariant the test suite sweeps: for every `kill_day`, the
/// returned digest equals [`straight_digest`] of the same config.
pub fn crash_resume_digest(cfg: WorldConfig, kill_day: u64, dir: &Path) -> Result<RunDigest> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::InvalidState(format!("checkpoint dir {}: {e}", dir.display())))?;

    // First life: run with checkpointing armed until the kill-point.
    reset_counters();
    {
        let world = World::build(cfg.clone())?;
        let _honey = world.run_honey_study(world.study_start())?;
        let crashed = world.run_wild_study_with(WildRunOptions {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.to_path_buf(),
                every_days: cfg.crawl_cadence_days,
            }),
            resume: None,
            crash: Some(CrashPlan { kill_day }),
        });
        match crashed {
            Err(Error::Interrupted(_)) => {}
            Ok(_) => {
                return Err(Error::InvalidState(format!(
                    "kill day {kill_day} never fired (monitoring window too short?)"
                )))
            }
            Err(e) => return Err(e),
        }
    }

    // Second life: fresh process semantics — nothing survives but the
    // config, the seed and the checkpoint directory.
    reset_counters();
    let world = World::build(cfg)?;
    let honey = world.run_honey_study(world.study_start())?;
    let scan = checkpoint::load_latest(dir).map_err(|e| Error::InvalidState(e.to_string()))?;
    let artifacts = world.run_wild_study_with(WildRunOptions {
        checkpoint: None,
        resume: scan.snapshot.map(|(snap, _)| snap),
        crash: None,
    })?;
    Ok(digest_world(&world, &artifacts, honey))
}

/// The monotone-degradation scenario: `devices` fixed clients each
/// attempt exactly one telemetry upload (no retries) to a TLS
/// collector under a pure drop plan, and the function returns how many
/// distinct installs the collector heard from.
///
/// Monotonicity is a coupling argument, not a hope: each device's
/// connection RNG forks from the device index alone, so two runs
/// differing only in `drop_chance` feed *identical* uniform draws to
/// each device's first (and only) attempt. A delivery survives when
/// its draw `u ≥ p`, so every exchange that survives the higher rate
/// survives the lower rate on the very same draws — the success set at
/// `p_high` is a subset of the success set at `p_low`.
pub fn telemetry_survival(seed: u64, drop_chance: f64, devices: u64) -> usize {
    let root = SeedFork::new(seed);
    let net = Network::new(root.fork("net"));
    let mut ca = CertAuthority::new("Chaos CA", root.fork("ca"));
    let mut roots = TrustStore::new();
    roots.install_root(ca.root_cert());
    let collector = Collector::new();
    let identity = ServerIdentity::issue(&mut ca, "collector.iiscope", root.fork("col-id"));
    let ip = Ipv4Addr::new(10, 9, 0, 1);
    net.bind(
        ip,
        443,
        Arc::new(HttpsFactory::new(
            Arc::new(collector.clone()),
            identity,
            root.fork("col-tls"),
        )),
    )
    .expect("collector bind");
    net.register_host("collector.iiscope", ip);
    net.set_default_fault(FaultPlan::lossy(drop_chance, 0.0));

    for i in 0..devices {
        let device = iiscope_devices::Device {
            id: DeviceId(i),
            addr: HostAddr {
                ip: Ipv4Addr::new(198, 51, (i / 200) as u8, (i % 200) as u8),
                asn: AsnId(7922),
                asn_kind: AsnKind::Eyeball,
                country: Country::Us,
            },
            build: "samsung/SM-G960F".into(),
            rooted: false,
            wifi_ssid: None,
            installed: vec![],
        };
        let mut client = HttpClient::new(
            net.clone(),
            device.addr,
            roots.clone(),
            root.fork_idx("dev", i),
        )
        .with_retries(0);
        let payload = telemetry_payload(&device, i, TelemetryEvent::Open);
        // A lost upload is the measured signal here, not an error.
        let _ = client.post_json("https://collector.iiscope/v1/telemetry", &payload);
    }
    collector.distinct_installs()
}

/// FNV-1a over a byte slice — the digest two chaos runs are compared
/// by (the workspace carries no hashing dependency).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"chaos"), fnv64(b"chaos"));
        assert_ne!(fnv64(b"chaos"), fnv64(b"order"));
    }

    #[test]
    fn grid_covers_every_fault_family() {
        let grid = fault_grid();
        assert!(grid.len() >= 6);
        assert!(grid.iter().any(|(_, p)| p.burst.is_some()));
        assert!(grid.iter().any(|(_, p)| !p.outages.is_empty()));
        assert!(grid.iter().any(|(_, p)| p.stall_chance > 0.0));
        assert!(grid.iter().any(|(_, p)| p.truncate_chance > 0.0));
        assert!(grid.iter().any(|(_, p)| p.garbage_chance > 0.0));
        assert!(grid.iter().any(|(_, p)| p.bandwidth.is_some()));
    }

    #[test]
    fn telemetry_survival_is_deterministic_and_lossless_when_clean() {
        let clean = telemetry_survival(7, 0.0, 30);
        assert_eq!(clean, 30, "clean network delivers every upload");
        assert_eq!(
            telemetry_survival(7, 0.25, 30),
            telemetry_survival(7, 0.25, 30)
        );
    }
}
