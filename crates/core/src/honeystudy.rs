//! The §3 study: purchase installs on three platforms, sequentially.
//!
//! "We arbitrarily pick one vetted (Fyber) and two unvetted
//! (ayeT-Studios and RankApp) IIPs … and purchase 500 no activity
//! installs for our honey app. Our incentivized install campaigns
//! across these three IIPs are spread over time such that no two
//! campaigns deliver installs at the same time."

use crate::world::World;
use iiscope_honeyapp::{
    AcquisitionFindings, CampaignDriver, CampaignOutcome, EngagementFindings, ForensicFindings,
};
use iiscope_types::{IipId, Result, SimDuration, SimTime, Usd};

/// The three platforms of §3.2, in purchase order.
pub const HONEY_IIPS: [IipId; 3] = [IipId::Fyber, IipId::AyetStudios, IipId::RankApp];

/// Results of the full §3 study.
#[derive(Debug, Clone)]
pub struct HoneyStudy {
    /// One outcome per purchased campaign.
    pub outcomes: Vec<CampaignOutcome>,
    /// §3.2 user acquisition findings.
    pub acquisition: AcquisitionFindings,
    /// §3.2 engagement findings.
    pub engagement: EngagementFindings,
    /// §3.2 forensic findings.
    pub forensics: ForensicFindings,
}

impl World {
    /// Runs the three honey campaigns back-to-back, starting at
    /// `start`, each waiting for the previous one to fully deliver
    /// plus a 3-day quiet gap (so the §3.2 time-window attribution is
    /// unambiguous).
    pub fn run_honey_study(&self, start: SimTime) -> Result<HoneyStudy> {
        let driver = CampaignDriver {
            net: self.net.clone(),
            store: self.store.clone(),
            honey_app: self.honey.app,
            developer: self.honey.developer,
            mediator: self.mediator.clone(),
            roots: self.genuine_roots.clone(),
            collector_url: self.honey.collector_url.clone(),
            seed: self.seed.fork("honey-study"),
        };
        let purchase = self.cfg.honey_purchase;
        let mut outcomes = Vec::new();
        let mut t = start;
        for iip in HONEY_IIPS {
            // Audience sized to cover over-delivery with headroom.
            let audience = self.audience_for(iip, (purchase as usize * 14) / 10 + 20);
            let payout = per_install_payout(iip);
            // Top up our account for this campaign's escrow.
            self.platforms[&iip].deposit(self.honey.developer, payout * purchase as i64 * 2)?;
            let outcome = driver.run(&self.platforms[&iip], &audience, purchase, payout, t)?;
            t = outcome.finished_at + SimDuration::from_days(3);
            outcomes.push(outcome);
        }
        let acquisition = AcquisitionFindings::compute(&outcomes, &self.collector);
        let engagement = EngagementFindings::compute(&outcomes, &self.collector);
        let forensics = ForensicFindings::compute(&outcomes, &self.collector);
        Ok(HoneyStudy {
            outcomes,
            acquisition,
            engagement,
            forensics,
        })
    }
}

/// What we paid per install in each campaign (unvetted platforms are
/// the cheap ones — §1's "$0.06 on average").
fn per_install_payout(iip: IipId) -> Usd {
    match iip {
        IipId::Fyber => Usd::from_cents(12),
        IipId::AyetStudios => Usd::from_cents(8),
        IipId::RankApp => Usd::from_cents(4),
        _ => Usd::from_cents(10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    #[test]
    fn honey_study_reproduces_section3_shape() {
        let world = World::build(WorldConfig::small(11)).unwrap();
        let study = world.run_honey_study(world.study_start()).unwrap();
        assert_eq!(study.outcomes.len(), 3);

        // Over-delivery ordering: Fyber > ayeT > RankApp (626/550/503
        // in the paper, on equal purchases).
        let by_iip = |iip: IipId| {
            study
                .outcomes
                .iter()
                .find(|o| o.iip == iip)
                .unwrap()
                .installs_delivered
        };
        assert!(by_iip(IipId::Fyber) > by_iip(IipId::AyetStudios));
        assert!(by_iip(IipId::AyetStudios) > by_iip(IipId::RankApp));
        assert!(by_iip(IipId::RankApp) >= world.cfg.honey_purchase);

        // Delivery speed: RankApp is the slow one (>24h in the paper).
        let dur = |iip: IipId| {
            study
                .outcomes
                .iter()
                .find(|o| o.iip == iip)
                .unwrap()
                .delivery_duration()
        };
        assert!(dur(IipId::RankApp) > dur(IipId::Fyber).times(5));

        // Telemetry gap: large for RankApp, small for the others.
        for (iip, _delivered, _reported, missing, _) in &study.acquisition.per_iip {
            match iip {
                IipId::RankApp => {
                    assert!((0.25..=0.70).contains(missing), "RankApp missing {missing}")
                }
                _ => assert!(*missing < 0.15, "{iip} missing {missing}"),
            }
        }

        // Engagement: Fyber/ayeT around 44%, RankApp single digits.
        let rate = |iip| study.engagement.rate_for(iip).unwrap();
        assert!((0.25..=0.60).contains(&rate(IipId::Fyber)));
        assert!((0.25..=0.60).contains(&rate(IipId::AyetStudios)));
        assert!(rate(IipId::RankApp) < 0.15);

        // Day-2 engagement is a handful of users at most.
        for (_, n) in &study.engagement.day2_clickers {
            assert!(*n <= 6, "day-2 clickers {n}");
        }

        // The headline §3.2 takeaway: the honey app's public install
        // count rose from 0 past the purchase size.
        let pkg = iiscope_types::PackageName::new(iiscope_honeyapp::HONEY_PACKAGE).unwrap();
        let profile = world.store.profile(&pkg).unwrap();
        assert!(
            profile.installs.lower_bound() >= world.cfg.honey_purchase,
            "bin {} too low",
            profile.installs
        );

        // No organic contamination.
        let report = world.store.acquisition_report(
            world.honey.app,
            world.study_start(),
            world.study_start() + SimDuration::from_days(60),
        );
        assert_eq!(report.organic, 0);
    }

    #[test]
    fn forensics_surface_worker_economy() {
        let world = World::build(WorldConfig::small(12)).unwrap();
        let study = world.run_honey_study(world.study_start()).unwrap();

        // Money-keyword rates ordered RankApp > ayeT > Fyber
        // (98% / 72% / 42% in the paper).
        let kw = |iip: IipId| {
            study
                .forensics
                .money_keyword_rate
                .iter()
                .find(|(i, _)| *i == iip)
                .unwrap()
                .1
        };
        assert!(kw(IipId::RankApp) > 0.85, "rankapp {}", kw(IipId::RankApp));
        assert!(kw(IipId::AyetStudios) > kw(IipId::Fyber));
        assert!(kw(IipId::Fyber) < 0.65, "fyber {}", kw(IipId::Fyber));

        // A device farm shows up: many installs in one /24, mostly
        // rooted, same SSID (the paper's 20/18 sighting).
        assert!(
            !study.forensics.farms.is_empty(),
            "expected at least one farm sighting"
        );
        let farm = &study.forensics.farms[0];
        assert!(farm.rooted * 10 >= farm.installs * 6);
        assert!(farm.same_ssid * 10 >= farm.installs * 6);

        // A small number of emulator/datacenter installs (§3.2: 4 and
        // 7 of 1,679 — rare but present).
        let total = study.acquisition.total_installs;
        assert!(study.forensics.emulator_installs <= total / 20);
        assert!(study.forensics.datacenter_installs <= total / 20);
    }
}
