//! Incrementally-maintained aggregates for the hot report tables.
//!
//! All 16 experiment tables historically recomputed from the full
//! columnar dataset after the run; at 100× scale that post-run pass is
//! a dominant serial cost and drags cold spilled [`RowLog`] segments
//! back through the LRU (Figure 5 alone rescanned the entire chart log
//! once per chart day). [`ReportAggregates`] is the streaming
//! alternative: once per sim day the wild-study loop folds the day's
//! *new* offer and chart rows — while they are still resident — into
//! Sym-keyed accumulators, so the final report pass over the hot
//! tables (4–8, figures 5/6, monetization) renders from O(aggregate)
//! state instead of re-scanning O(run history) rows.
//!
//! [`RowLog`]: iiscope_monitor::RowLog
//!
//! Contracts the rest of the workspace leans on:
//!
//! * **Pure fold.** The aggregate state is a pure function of (dataset
//!   arrival order, affiliate rate book). Folding day-by-day, folding
//!   everything in one call, or re-folding a restored dataset all
//!   produce identical state — which is what lets a v2 snapshot
//!   (no aggregate section) resume into an incremental run.
//! * **Byte parity.** Every incremental table constructor produces
//!   output byte-identical to its batch counterpart; the batch path is
//!   kept as the oracle and tier-1 tests assert equality at any worker
//!   count, shard count and memory budget.
//! * **Checkpointable.** The state serializes into the snapshot's
//!   AGGS section (format v3, additive) through the same
//!   [`iiscope_types::frame`] codec as everything else.

use iiscope_analysis::classify::is_arbitrage;
use iiscope_analysis::{classify_description, OfferType};
use iiscope_monitor::{Dataset, RateBook};
use iiscope_playstore::ChartKind;
use iiscope_types::frame::{Dec, Enc, FrameError};
use iiscope_types::{IipId, Sym, SymSet, Usd};
use std::collections::BTreeMap;

/// One deduplicated offer, reduced to the columns the hot tables
/// consume: its package symbol, platform, offer classification and
/// normalized payout. Strings are gone — classification and rate-book
/// normalization happened once, at fold time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DigestOffer {
    /// Advertised package symbol.
    pub pkg: Sym,
    /// Platform the offer ran on.
    pub iip: IipId,
    /// Whether the description classified as a no-activity offer.
    pub no_activity: bool,
    /// Whether the description used arbitrage phrasing.
    pub arbitrage: bool,
    /// Rate-book-normalized payout (`None` for unknown affiliates).
    pub usd: Option<Usd>,
}

/// Streaming accumulators for the hot report tables, folded once per
/// sim day from that day's ingest deltas. See the module docs for the
/// fold/parity/checkpoint contracts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReportAggregates {
    /// Deduplicated offers consumed so far (next fold starts here).
    unique_cursor: usize,
    /// Chart snapshots consumed so far.
    charts_cursor: usize,
    // Columnar digest of the deduplicated offer stream, arrival order.
    pkg: Vec<Sym>,
    iip: Vec<IipId>,
    no_activity: Vec<bool>,
    arbitrage: Vec<bool>,
    usd: Vec<Option<Usd>>,
    /// Chart size (entry count) per chart per crawl day — what Figure 5
    /// used to rescan the whole chart log for, once per chart day.
    chart_sizes: BTreeMap<&'static str, BTreeMap<u64, usize>>,
}

impl ReportAggregates {
    /// Empty aggregate state (cursors at the start of the logs).
    pub fn new() -> ReportAggregates {
        ReportAggregates::default()
    }

    /// Folds every dataset row appended since the previous fold:
    /// classifies and normalizes the new deduplicated offers, and
    /// records the new chart snapshots' sizes. Reading only the delta
    /// keeps the pass off the spill path — the deduplicated rows are
    /// pinned resident, and a chart cursor past the spilled prefix
    /// streams from resident segments only.
    pub fn fold_day(&mut self, ds: &Dataset, book: &RateBook) {
        for (o, pkg, _) in ds.unique_offers_with_syms_from(self.unique_cursor) {
            self.pkg.push(pkg);
            self.iip.push(o.iip);
            self.no_activity
                .push(classify_description(&o.raw.description) == OfferType::NoActivity);
            self.arbitrage.push(is_arbitrage(&o.raw.description));
            self.usd.push(book.to_usd(o.raw.reward, &o.affiliate));
        }
        self.unique_cursor = ds.unique_offer_count();
        for snap in ds.charts_from(self.charts_cursor) {
            // First snapshot of a (chart, day) wins, matching the
            // batch path's `.find()` semantics.
            self.chart_sizes
                .entry(snap.chart)
                .or_default()
                .entry(snap.day)
                .or_insert(snap.entries.len());
        }
        self.charts_cursor = ds.charts_len();
    }

    /// Number of deduplicated offers folded so far.
    pub fn len(&self) -> usize {
        self.pkg.len()
    }

    /// True when nothing was folded yet.
    pub fn is_empty(&self) -> bool {
        self.pkg.is_empty()
    }

    /// Whether the fold has consumed every row the dataset currently
    /// holds — what the incremental report asserts before trusting the
    /// digest over a rescan.
    pub fn covers(&self, ds: &Dataset) -> bool {
        self.unique_cursor == ds.unique_offer_count() && self.charts_cursor == ds.charts_len()
    }

    /// The folded offer digest, arrival order.
    pub fn offers(&self) -> impl Iterator<Item = DigestOffer> + '_ {
        (0..self.pkg.len()).map(|i| DigestOffer {
            pkg: self.pkg[i],
            iip: self.iip[i],
            no_activity: self.no_activity[i],
            arbitrage: self.arbitrage[i],
            usd: self.usd[i],
        })
    }

    /// Entry count of `chart` on `day` (0 when that chart was not
    /// crawled that day).
    pub fn chart_size(&self, chart: &str, day: u64) -> usize {
        self.chart_sizes
            .get(chart)
            .and_then(|days| days.get(&day))
            .copied()
            .unwrap_or(0)
    }

    /// Packages with at least one activity offer.
    pub fn activity_syms(&self) -> SymSet {
        let mut set = SymSet::default();
        for i in 0..self.pkg.len() {
            if !self.no_activity[i] {
                set.insert(self.pkg[i]);
            }
        }
        set
    }

    /// Packages with at least one no-activity offer.
    pub fn no_activity_syms(&self) -> SymSet {
        let mut set = SymSet::default();
        for i in 0..self.pkg.len() {
            if self.no_activity[i] {
                set.insert(self.pkg[i]);
            }
        }
        set
    }

    /// Packages with at least one arbitrage-style offer.
    pub fn arbitrage_syms(&self) -> SymSet {
        let mut set = SymSet::default();
        for i in 0..self.pkg.len() {
            if self.arbitrage[i] {
                set.insert(self.pkg[i]);
            }
        }
        set
    }

    /// Serializes the aggregate state (the snapshot's AGGS section
    /// body).
    pub fn encode(&self, e: &mut Enc) {
        e.u64(self.unique_cursor as u64)
            .u64(self.charts_cursor as u64);
        e.u64(self.pkg.len() as u64);
        for i in 0..self.pkg.len() {
            e.u32(self.pkg[i].0).u8(self.iip[i] as u8);
            let flags = u8::from(self.no_activity[i])
                | (u8::from(self.arbitrage[i]) << 1)
                | (u8::from(self.usd[i].is_some()) << 2);
            e.u8(flags);
            if let Some(usd) = self.usd[i] {
                e.i64(usd.micros());
            }
        }
        e.u64(self.chart_sizes.len() as u64);
        for (chart, days) in &self.chart_sizes {
            e.str(chart).u64(days.len() as u64);
            for (day, size) in days {
                e.u64(*day).u64(*size as u64);
            }
        }
    }

    /// Deserializes and validates aggregate state. Total: corrupt
    /// bytes return `Err`, never panic.
    pub fn decode(d: &mut Dec) -> Result<ReportAggregates, FrameError> {
        let unique_cursor = d.u64()? as usize;
        let charts_cursor = d.u64()? as usize;
        let n = d.u64()? as usize;
        let mut aggs = ReportAggregates {
            unique_cursor,
            charts_cursor,
            ..ReportAggregates::default()
        };
        for _ in 0..n {
            aggs.pkg.push(Sym(d.u32()?));
            let iip = IipId::ALL
                .get(d.u8()? as usize)
                .copied()
                .ok_or(FrameError::Codec("aggregate IIP index out of range"))?;
            aggs.iip.push(iip);
            let flags = d.u8()?;
            if flags & !0b111 != 0 {
                return Err(FrameError::Codec("unknown aggregate offer flags"));
            }
            aggs.no_activity.push(flags & 1 != 0);
            aggs.arbitrage.push(flags & 2 != 0);
            aggs.usd.push(if flags & 4 != 0 {
                Some(Usd::from_micros(d.i64()?))
            } else {
                None
            });
        }
        let n_charts = d.u64()? as usize;
        for _ in 0..n_charts {
            let id = d.str()?;
            let chart = ChartKind::ALL
                .iter()
                .find(|k| k.id() == id)
                .map(|k| k.id())
                .ok_or(FrameError::Codec("unknown aggregate chart id"))?;
            let n_days = d.u64()? as usize;
            let days = aggs.chart_sizes.entry(chart).or_default();
            for _ in 0..n_days {
                let day = d.u64()?;
                days.insert(day, d.u64()? as usize);
            }
        }
        Ok(aggs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iiscope_monitor::parsers::{RawOffer, RewardValue, ScrapedOffer};
    use iiscope_monitor::ChartSnapshot;
    use iiscope_types::{Country, SimTime};

    fn offer(iip: IipId, key: u64, pkg: &str, day: u64, desc: &str) -> ScrapedOffer {
        ScrapedOffer {
            iip,
            raw: RawOffer {
                offer_key: key,
                description: desc.into(),
                reward: RewardValue::Cents(25),
                package: pkg.into(),
                store_url: format!("https://play.iiscope/store/apps/details?id={pkg}"),
            },
            seen_at: SimTime::from_days(day),
            affiliate: "com.cash.app".into(),
            vantage: Country::Us,
        }
    }

    fn chart(day: u64, entries: usize) -> ChartSnapshot {
        ChartSnapshot {
            day,
            chart: ChartKind::ALL[0].id(),
            entries: (0..entries).map(|r| (format!("com.app.{r}"), r)).collect(),
        }
    }

    fn book() -> RateBook {
        RateBook::from_catalog(&iiscope_devices::AffiliateApp::table2_catalog())
    }

    #[test]
    fn day_by_day_fold_equals_one_shot_fold() {
        let book = book();
        let mut ds = Dataset::new();
        let mut daily = ReportAggregates::new();
        for day in 0..6u64 {
            ds.add_offers([
                offer(
                    IipId::Fyber,
                    day * 2,
                    "com.a.one",
                    day,
                    "Install and register",
                ),
                offer(IipId::RankApp, day * 2 + 1, "com.b.two", day, "Install"),
                // Re-observation: must not re-enter the digest.
                offer(IipId::Fyber, 0, "com.a.one", day, "Install and register"),
            ]);
            ds.add_chart(chart(day, 3 + day as usize));
            daily.fold_day(&ds, &book);
        }
        let mut one_shot = ReportAggregates::new();
        one_shot.fold_day(&ds, &book);
        assert_eq!(daily, one_shot, "fold must be order-insensitive");
        assert!(daily.covers(&ds));
        assert_eq!(daily.len(), ds.unique_offer_count());
        assert_eq!(daily.chart_size(ChartKind::ALL[0].id(), 2), 5);
        assert_eq!(daily.chart_size(ChartKind::ALL[0].id(), 99), 0);
        assert_eq!(daily.chart_size("no_such_chart", 2), 0);
    }

    #[test]
    fn digest_matches_a_batch_rescan() {
        let book = book();
        let mut ds = Dataset::new();
        ds.add_offers([
            offer(
                IipId::Fyber,
                1,
                "com.a.one",
                1,
                "Install and register an account",
            ),
            offer(IipId::RankApp, 2, "com.b.two", 1, "Install"),
            offer(
                IipId::AdGem,
                3,
                "com.c.three",
                2,
                "Install and keep it for 3 days",
            ),
        ]);
        let mut aggs = ReportAggregates::new();
        aggs.fold_day(&ds, &book);
        let digest: Vec<DigestOffer> = aggs.offers().collect();
        let rescan: Vec<DigestOffer> = ds
            .unique_offers_with_syms()
            .map(|(o, pkg, _)| DigestOffer {
                pkg,
                iip: o.iip,
                no_activity: classify_description(&o.raw.description) == OfferType::NoActivity,
                arbitrage: is_arbitrage(&o.raw.description),
                usd: book.to_usd(o.raw.reward, &o.affiliate),
            })
            .collect();
        assert_eq!(digest, rescan);
        // Classification sets partition consistently.
        let activity = aggs.activity_syms();
        let no_activity = aggs.no_activity_syms();
        for d in &digest {
            assert!(activity.contains(d.pkg) || no_activity.contains(d.pkg));
        }
    }

    #[test]
    fn aggregate_state_round_trips_the_codec() {
        let book = book();
        let mut ds = Dataset::new();
        ds.add_offers([
            offer(IipId::Fyber, 1, "com.a.one", 1, "Install and register"),
            offer(IipId::OfferToro, 9, "com.z.last", 4, "Install"),
        ]);
        // Point rewards through an unknown affiliate keep usd = None
        // in the digest (Cents/Usd rewards never need the rate book).
        let mut unknown = offer(IipId::AdGem, 5, "com.u.unknown", 2, "Install");
        unknown.raw.reward = RewardValue::Points(500);
        unknown.affiliate = "com.not.registered".into();
        ds.add_offers([unknown]);
        ds.add_chart(chart(2, 4));
        let mut aggs = ReportAggregates::new();
        aggs.fold_day(&ds, &book);
        assert!(aggs.offers().any(|o| o.usd.is_none()));

        let mut e = Enc::new();
        aggs.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = ReportAggregates::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, aggs);

        // Garbage flags are rejected, not misread.
        let mut corrupt = Enc::new();
        corrupt.u64(0).u64(0).u64(1).u32(0).u8(0).u8(0xF0);
        let cbytes = corrupt.into_bytes();
        assert!(ReportAggregates::decode(&mut Dec::new(&cbytes)).is_err());
    }
}
