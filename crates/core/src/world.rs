//! World construction: every subsystem wired together, deterministically.

use crate::config::WorldConfig;
use crate::servefront::{WorldRouter, WorldVersion};
use crate::wildgen::{self, WildPlan};
use iiscope_analysis::{CompanyRecord, CrunchbaseDb, FundingRound, RoundKind};
use iiscope_attribution::Mediator;
use iiscope_devices::population::{standard_registry, vpn_asn};
use iiscope_devices::{AffiliateApp, IipAudience, IipBehaviorProfile};
use iiscope_honeyapp::{Collector, HONEY_PACKAGE, HONEY_TITLE};
use iiscope_iip::{DeveloperApplication, IipPlatform, OfferWallHandler};
use iiscope_monitor::{Crawler, MonitoringInfra};
use iiscope_netsim::{AsnId, AsnRegistry, HostAddr, Network};
use iiscope_playstore::apk::{AdLibrary, ApkInfo};
use iiscope_playstore::frontend::StoreFrontend;
use iiscope_playstore::PlayStore;
use iiscope_types::rng::{chance, sample_k};
use iiscope_types::time::study;
use iiscope_types::{
    AppId, Country, DeveloperId, Genre, IipId, Interner, PackageName, Result, SeedFork,
    SimDuration, SimTime, SymMap, Usd,
};
use iiscope_wire::server::HttpsFactory;
use iiscope_wire::tls::{CertAuthority, MitmProxy, ServerIdentity, TrustStore};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Organic (background) activity rates of one app.
#[derive(Debug, Clone, Copy)]
pub struct OrganicProfile {
    /// New installs per day.
    pub installs_daily: f64,
    /// Sessions per day.
    pub sessions_daily: f64,
    /// Average session length (seconds).
    pub session_secs: u64,
    /// Revenue per day.
    pub revenue_daily: Usd,
    /// Star ratings posted per day.
    pub ratings_daily: f64,
    /// The app's long-run average star rating (1.0–5.0).
    pub avg_stars: f64,
}

/// Handles for the honey-app apparatus.
#[derive(Debug, Clone)]
pub struct HoneySetup {
    /// The published app.
    pub app: AppId,
    /// Our research developer account (registered on every IIP).
    pub developer: DeveloperId,
    /// Telemetry endpoint.
    pub collector_url: String,
}

/// The fully-built world.
pub struct World {
    /// Build configuration.
    pub cfg: WorldConfig,
    /// Seed tree root.
    pub seed: SeedFork,
    /// The network.
    pub net: Network,
    /// The Play Store.
    pub store: Arc<PlayStore>,
    /// IIP platforms.
    pub platforms: BTreeMap<IipId, Arc<IipPlatform>>,
    /// Offer-wall handlers (affiliate registration lives here).
    pub walls: BTreeMap<IipId, Arc<OfferWallHandler>>,
    /// Genuine leaf public key per wall (for the pinning ablation).
    pub wall_keys: BTreeMap<IipId, u64>,
    /// The attribution mediator.
    pub mediator: Arc<Mediator>,
    /// The honey-app telemetry collector.
    pub collector: Collector,
    /// The §4.1 monitoring rig.
    pub infra: MonitoringInfra,
    /// Genuine trust roots (no monitor CA).
    pub genuine_roots: TrustStore,
    /// The Crunchbase snapshot.
    pub crunchbase: CrunchbaseDb,
    /// The generated population plan (ground truth for calibration
    /// tests; experiments must go through crawled/milked data).
    pub plan: WildPlan,
    /// Package-name symbol table, numbered in generation order (honey
    /// app, then planned apps, then baseline). The wild study seeds
    /// its [`iiscope_monitor::Dataset`] from a clone of this, so world
    /// and dataset agree on every planned package's symbol.
    pub syms: Interner,
    /// Published app ids by package symbol.
    pub app_ids: SymMap<AppId>,
    /// Store developer ids by package symbol.
    pub dev_ids: SymMap<DeveloperId>,
    /// Per-app organic activity rates.
    pub organic: BTreeMap<AppId, OrganicProfile>,
    /// Honey-app handles.
    pub honey: HoneySetup,
    /// The researchers' crawl egress.
    pub crawler_from: HostAddr,
    /// Shared address registry (honey audiences allocate from it).
    pub registry: Mutex<AsnRegistry>,
    /// The monitored affiliate apps (Table 2).
    pub affiliate_apps: Vec<AffiliateApp>,
    /// Served-state version: the wild study bumps it as each sim day
    /// advances, invalidating any day-versioned response caches handed
    /// out by [`World::serve_router`].
    pub day_version: WorldVersion,
}

impl World {
    /// Builds a world from the configuration. Pure function of the
    /// seed: two builds with the same config are identical.
    pub fn build(cfg: WorldConfig) -> Result<World> {
        let seed = SeedFork::new(cfg.seed);
        let net = Network::new(seed.fork("net"));
        // Long runs would hoard every ciphertext segment otherwise.
        net.capture().set_enabled(false);

        let mut registry = standard_registry();
        let mut ca = CertAuthority::new("iiscope Public CA", seed.fork("public-ca"));
        let mut genuine_roots = TrustStore::new();
        genuine_roots.install_root(ca.root_cert());

        // --- Play Store -------------------------------------------------
        let store = Arc::new(PlayStore::new(seed.fork("store")));
        store.set_enforcement(cfg.enforcement.clone());
        store.set_ranking(cfg.ranking);
        let play_ip = Ipv4Addr::new(10, 100, 0, 1);
        net.bind(
            play_ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(StoreFrontend::new(Arc::clone(&store))),
                ServerIdentity::issue(&mut ca, "play.iiscope", seed.fork("play-id")),
                seed.fork("play-tls"),
            )),
        )?;
        net.register_host("play.iiscope", play_ip);

        // --- Collector ---------------------------------------------------
        let collector = Collector::new();
        let collector_ip = Ipv4Addr::new(10, 100, 0, 2);
        net.bind(
            collector_ip,
            443,
            Arc::new(HttpsFactory::new(
                Arc::new(collector.clone()),
                ServerIdentity::issue(&mut ca, "collector.iiscope", seed.fork("col-id")),
                seed.fork("col-tls"),
            )),
        )?;
        net.register_host("collector.iiscope", collector_ip);

        // --- IIP platforms + walls ---------------------------------------
        let affiliate_apps = AffiliateApp::table2_catalog();
        let mut platforms = BTreeMap::new();
        let mut walls = BTreeMap::new();
        let mut wall_keys = BTreeMap::new();
        for (i, iip) in IipId::ALL.into_iter().enumerate() {
            let platform = Arc::new(IipPlatform::new(iip, seed.fork("iip").fork(iip.name())));
            let wall = Arc::new(OfferWallHandler::new(Arc::clone(&platform)));
            for app in &affiliate_apps {
                wall.register_affiliate(app.package.as_str(), app.points_per_dollar);
            }
            let host = AffiliateApp::wall_host(iip);
            let identity =
                ServerIdentity::issue(&mut ca, &host, seed.fork("wall-id").fork(iip.name()));
            wall_keys.insert(iip, identity.keys.public);
            let ip = Ipv4Addr::new(10, 101, 0, 10 + i as u8);
            net.bind(
                ip,
                443,
                Arc::new(HttpsFactory::new(
                    Arc::clone(&wall) as Arc<dyn iiscope_wire::Handler>,
                    identity,
                    seed.fork("wall-tls").fork(iip.name()),
                )),
            )?;
            net.register_host(&host, ip);
            platforms.insert(iip, platform);
            walls.insert(iip, wall);
        }

        // --- MITM proxy + monitoring rig ----------------------------------
        let proxy = MitmProxy::new(net.clone(), genuine_roots.clone(), 443, seed.fork("mitm"));
        let intercepts = proxy.intercepts();
        let mitm_root = proxy.root_cert();
        let proxy_ip = Ipv4Addr::new(10, 102, 0, 1);
        net.bind(proxy_ip, 3128, Arc::new(proxy))?;
        let mut phone_roots = genuine_roots.clone();
        phone_roots.install_root(mitm_root);
        let mut vantage_addrs = BTreeMap::new();
        for c in &cfg.milk_countries {
            let asn = vpn_asn(*c).ok_or_else(|| {
                iiscope_types::Error::InvalidState(format!("{c} is not a vantage country"))
            })?;
            vantage_addrs.insert(*c, registry.alloc_host_fresh_block(asn)?);
        }
        let pins = if cfg.walls_pin_certificates {
            IipId::ALL
                .into_iter()
                .map(|iip| (AffiliateApp::wall_host(iip), wall_keys[&iip]))
                .collect()
        } else {
            Vec::new()
        };
        let infra = MonitoringInfra {
            net: net.clone(),
            proxy: (proxy_ip, 3128),
            intercepts,
            phone_roots,
            vantage_addrs,
            pins,
            seed: seed.fork("infra"),
        };

        // --- Honey app -----------------------------------------------------
        let mut syms = Interner::new();
        syms.intern(HONEY_PACKAGE);
        let honey_dev = store.register_developer(
            "iiscope research",
            Country::Us,
            "research@iiscope.net",
            Some("https://iiscope.net".into()),
        );
        let honey_app = store.publish(
            PackageName::new(HONEY_PACKAGE).expect("valid"),
            HONEY_TITLE,
            honey_dev,
            Genre::Tools,
            SimTime::from_days(study::STUDY_START.days().saturating_sub(20)),
            ApkInfo::bare(),
        )?;
        // Register our account with every platform (the paper shared
        // billing information with the vetted ones).
        for platform in platforms.values() {
            platform.register_developer(&DeveloperApplication {
                developer: honey_dev,
                has_tax_id: true,
                has_bank_account: true,
                deposit: platform.profile.min_deposit + Usd::from_dollars(500),
            })?;
        }

        // --- Population ------------------------------------------------------
        let plan = wildgen::generate(&cfg, seed.fork("plan"));
        let mut app_ids = SymMap::default();
        let mut dev_ids = SymMap::default();
        let mut organic = BTreeMap::new();
        let mut crunchbase = CrunchbaseDb::new();
        let mut rng = seed.fork("world-build").rng();

        for app in &plan.apps {
            let dev = store.register_developer(
                app.developer_name.clone(),
                app.developer_country,
                format!("contact@{}.example", app.package.as_str().replace('.', "-")),
                app.developer_website.clone(),
            );
            let apk = build_apk(
                app.ad_library_count,
                app.obfuscation,
                app.has_activity_offer(),
                &mut rng,
            );
            let id = store.publish(
                app.package.clone(),
                app.title.clone(),
                dev,
                app.genre,
                app.released,
                apk,
            )?;
            let sym = syms.intern(app.package.as_str());
            app_ids.insert(sym, id);
            dev_ids.insert(sym, dev);
            let mut org = organic_profile(app.pre_installs, app.genre, &mut rng);
            if app.package.as_str() == crate::wildgen::CASE_STUDY_TREBEL
                || app.package.as_str() == crate::wildgen::CASE_STUDY_WOF
            {
                // The case studies must owe their chart debut to the
                // campaign, not to organic traffic.
                org.sessions_daily *= 0.3;
                org.revenue_daily = Usd::ZERO;
            }
            organic.insert(id, org);
            // Pre-study install base.
            store_bulk_installs(&store, id, app.released, app.pre_installs);

            // Crunchbase record.
            if app.crunchbase_matched {
                let campaign_end = study::STUDY_START
                    + SimDuration::from_days(
                        app.campaigns.iter().map(|c| c.end_day()).max().unwrap_or(0),
                    );
                crunchbase.insert(company_for(
                    &app.developer_name,
                    app.developer_website.as_deref(),
                    app.developer_country,
                    app.raises_funding,
                    app.is_public_company,
                    campaign_end,
                    &mut rng,
                ));
            }

            // Register the developer on each platform it advertises on,
            // with enough deposit to escrow every offer. Caps are
            // multiplied by `scale` at campaign start, so the escrow
            // deposit must cover the scaled spend.
            for campaign in &app.campaigns {
                let scale = cfg.scale.max(1);
                let budget: Usd = campaign
                    .offers
                    .iter()
                    .map(|o| o.payout * o.cap.saturating_mul(scale) as i64)
                    .sum();
                let platform = &platforms[&campaign.iip];
                platform.register_developer(&DeveloperApplication {
                    developer: dev,
                    has_tax_id: true,
                    has_bank_account: true,
                    deposit: budget + platform.profile.min_deposit + Usd::from_dollars(10),
                })?;
            }
        }

        for b in &plan.baseline {
            let dev = store.register_developer(
                b.developer_name.clone(),
                b.developer_country,
                format!("contact@{}.example", b.package.as_str().replace('.', "-")),
                b.developer_website.clone(),
            );
            let apk = build_apk(b.ad_library_count, b.obfuscation, false, &mut rng);
            let id = store.publish(
                b.package.clone(),
                b.title.clone(),
                dev,
                b.genre,
                b.released,
                apk,
            )?;
            let sym = syms.intern(b.package.as_str());
            app_ids.insert(sym, id);
            dev_ids.insert(sym, dev);
            organic.insert(id, organic_profile(b.pre_installs, b.genre, &mut rng));
            store_bulk_installs(&store, id, b.released, b.pre_installs);
            if b.crunchbase_matched {
                crunchbase.insert(company_for(
                    &b.developer_name,
                    b.developer_website.as_deref(),
                    b.developer_country,
                    b.raises_funding,
                    false,
                    study::STUDY_START + SimDuration::from_days(10),
                    &mut rng,
                ));
            }
        }

        let crawler_from = registry.alloc_host_fresh_block(AsnId(16_509))?;

        Ok(World {
            cfg,
            seed,
            net,
            store,
            platforms,
            walls,
            wall_keys,
            mediator: Arc::new(Mediator::new("appsflyer.iiscope")),
            collector,
            infra,
            genuine_roots,
            crunchbase,
            plan,
            syms,
            app_ids,
            dev_ids,
            organic,
            honey: HoneySetup {
                app: honey_app,
                developer: honey_dev,
                collector_url: "https://collector.iiscope/v1/telemetry".into(),
            },
            crawler_from,
            registry: Mutex::new(registry),
            affiliate_apps,
            day_version: WorldVersion::new(),
        })
    }

    /// Published app id by package name.
    pub fn app_id(&self, package: &str) -> Option<AppId> {
        self.app_ids.get(self.syms.get(package)?).copied()
    }

    /// Store developer id by package name.
    pub fn dev_id(&self, package: &str) -> Option<DeveloperId> {
        self.dev_ids.get(self.syms.get(package)?).copied()
    }

    /// A fresh crawler client (researchers' machine, genuine roots).
    pub fn crawler(&self) -> Crawler {
        Crawler::new(
            self.net.clone(),
            self.crawler_from,
            self.genuine_roots.clone(),
            "play.iiscope",
            self.seed.fork("crawler"),
        )
    }

    /// A crawler with a labelled per-index RNG fork — the wild study's
    /// parallel workers each get their own connection and seed stream.
    pub fn crawler_indexed(&self, idx: u64) -> Crawler {
        Crawler::new(
            self.net.clone(),
            self.crawler_from,
            self.genuine_roots.clone(),
            "play.iiscope",
            self.seed.fork("crawler").fork_idx("worker", idx),
        )
    }

    /// Generates a worker audience for one platform (honey campaigns).
    /// Sharded by `cfg.shards`: each shard draws from its own seed
    /// stream and allocates device ids in its own namespace, so the
    /// audience is a pure function of `(seed, shards)` — never of the
    /// worker count that later simulates it. `shards = 1` reproduces
    /// the legacy single-stream audience bit-for-bit.
    pub fn audience_for(&self, iip: IipId, n_workers: usize) -> IipAudience {
        let mut registry = self.registry.lock();
        IipAudience::generate_sharded(
            &IipBehaviorProfile::for_iip(iip),
            n_workers,
            &mut registry,
            self.seed.fork("audience").fork(iip.name()),
            1_000_000 + (iip as usize as u64) * 1_000_000,
            self.cfg.shards,
        )
    }

    /// The world's public HTTP surface as one path-multiplexed
    /// handler — what `repro --serve` binds to a real socket. Store
    /// routes pass through verbatim; walls mount at
    /// `/wall/<slug>/offers`. Every dispatch is a pure read, so a
    /// server hammering these mid-run cannot perturb determinism —
    /// which also makes rendered responses cacheable: this router
    /// retains them under [`World::day_version`] and serves hits as
    /// cheap `Bytes` clones until the sim advances a day.
    pub fn serve_router(&self) -> Arc<WorldRouter> {
        Arc::new(WorldRouter::new_cached(
            StoreFrontend::new(Arc::clone(&self.store)),
            self.walls.clone(),
            self.day_version.clone(),
        ))
    }

    /// [`World::serve_router`] without the response cache — the A/B
    /// baseline for `repro --serve-cache off` and the load harness's
    /// before/after numbers.
    pub fn serve_router_uncached(&self) -> Arc<WorldRouter> {
        Arc::new(WorldRouter::new(
            StoreFrontend::new(Arc::clone(&self.store)),
            self.walls.clone(),
        ))
    }

    /// The study start instant.
    pub fn study_start(&self) -> SimTime {
        study::STUDY_START
    }

    /// The study end instant under this configuration.
    pub fn study_end(&self) -> SimTime {
        study::STUDY_START + SimDuration::from_days(self.cfg.monitoring_days)
    }
}

fn store_bulk_installs(store: &PlayStore, id: AppId, released: SimTime, n: u64) {
    if n > 0 {
        // Ledger-level bulk record; uses the store's session API shape.
        store.record_organic_installs(id, released, n);
    }
}

fn build_apk(count: usize, obfuscation: f64, activity_app: bool, rng: &mut impl Rng) -> ApkInfo {
    let mut libs: Vec<AdLibrary> = sample_k(rng, AdLibrary::ALL, count.min(AdLibrary::ALL.len()));
    // Activity-offer apps skew toward offer-wall-capable SDKs
    // (§4.3.2: "We also find advertisers that serve the role of IIP").
    if activity_app && !libs.iter().any(|l| l.is_offerwall_vendor()) && chance(rng, 0.5) {
        libs.push(AdLibrary::FyberSdk);
    }
    let dynamic = if chance(rng, 0.15) {
        sample_k(rng, AdLibrary::ALL, 1)
    } else {
        Vec::new()
    };
    ApkInfo {
        ad_libraries: libs,
        obfuscation,
        dynamic_libraries: dynamic,
    }
}

fn organic_profile(pre_installs: u64, genre: Genre, rng: &mut impl Rng) -> OrganicProfile {
    let p = pre_installs as f64;
    let installs_daily = p.powf(0.52) * 0.04 * (0.5 + rng.gen::<f64>());
    // Sub-linear enough that a campaign's engagement burst is material
    // for apps near the chart line (the mechanism behind Figure 5 and
    // Table 6).
    let sessions_daily = p.powf(0.48) * 0.45 * (0.5 + rng.gen::<f64>());
    let revenue_daily = if genre.is_game() && chance(rng, 0.5) {
        Usd::from_micros((p.powf(0.5) * 0.04 * 1e6) as i64)
    } else {
        Usd::ZERO
    };
    OrganicProfile {
        installs_daily,
        sessions_daily,
        session_secs: 120 + (rng.gen::<f64>() * 240.0) as u64,
        revenue_daily,
        // Roughly half a percent of installers leave a rating.
        ratings_daily: installs_daily * 0.12,
        avg_stars: 3.2 + rng.gen::<f64>() * 1.6,
    }
}

fn company_for(
    name: &str,
    website: Option<&str>,
    country: Country,
    raises_after: bool,
    is_public: bool,
    campaign_end: SimTime,
    rng: &mut impl Rng,
) -> CompanyRecord {
    let mut rounds = Vec::new();
    // Many companies have a historic round well before the study.
    if chance(rng, 0.6) {
        rounds.push(FundingRound {
            at: SimTime::from_days(rng.gen_range(100..1_200)),
            kind: RoundKind::Seed,
            amount: Usd::from_dollars(rng.gen_range(200_000..3_000_000)),
            investor: "Seed Partners".into(),
        });
    }
    if raises_after {
        let kinds = [
            RoundKind::SeriesA,
            RoundKind::SeriesB,
            RoundKind::SeriesC,
            RoundKind::SeriesD,
            RoundKind::SeriesF,
        ];
        rounds.push(FundingRound {
            at: campaign_end + SimDuration::from_days(rng.gen_range(5..45)),
            kind: kinds[rng.gen_range(0..kinds.len())],
            amount: Usd::from_dollars(rng.gen_range(5_000_000..120_000_000)),
            investor: "Growth Capital LLC".into(),
        });
    }
    rounds.sort_by_key(|r| r.at);
    CompanyRecord {
        name: name.to_string(),
        website: website.map(str::to_string),
        country,
        is_public,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;

    #[test]
    fn small_world_builds_and_serves() {
        let world = World::build(WorldConfig::small(3)).unwrap();
        assert_eq!(world.plan.apps.len(), 90);
        assert_eq!(world.platforms.len(), 7);
        // The store frontend answers over the network.
        let mut crawler = world.crawler();
        let pkg = world.plan.apps[5].package.as_str();
        let snap = crawler
            .profile(pkg, world.study_start())
            .unwrap()
            .expect("published app");
        assert_eq!(snap.package, pkg);
        // Baseline profile too.
        let b = world.plan.baseline[0].package.as_str();
        assert!(crawler.profile(b, world.study_start()).unwrap().is_some());
        // Honey app exists.
        assert!(crawler
            .profile(HONEY_PACKAGE, world.study_start())
            .unwrap()
            .is_some());
    }

    #[test]
    fn build_is_deterministic() {
        let a = World::build(WorldConfig::small(9)).unwrap();
        let b = World::build(WorldConfig::small(9)).unwrap();
        assert_eq!(a.app_ids, b.app_ids);
        let pkg = a.plan.apps[3].package.clone();
        assert_eq!(
            a.store.profile(&pkg).unwrap().installs,
            b.store.profile(&pkg).unwrap().installs
        );
    }

    #[test]
    fn crunchbase_matches_planned_developers() {
        let world = World::build(WorldConfig::small(4)).unwrap();
        for app in &world.plan.apps {
            let matched = world
                .crunchbase
                .match_developer(&app.developer_name, app.developer_website.as_deref())
                .is_some();
            assert_eq!(matched, app.crunchbase_matched, "{}", app.package);
        }
    }

    #[test]
    fn pinning_config_populates_infra_pins() {
        let mut cfg = WorldConfig::small(5);
        cfg.walls_pin_certificates = true;
        let world = World::build(cfg).unwrap();
        assert_eq!(world.infra.pins.len(), 7);
        let unpinned = World::build(WorldConfig::small(5)).unwrap();
        assert!(unpinned.infra.pins.is_empty());
    }
}
