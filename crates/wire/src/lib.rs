//! # iiscope-wire
//!
//! Application wire formats for the iiscope world, layered over the
//! turn-based connections of `iiscope-netsim`:
//!
//! * [`json`] — a from-scratch JSON value, parser and serializer. The
//!   paper's monitoring pipeline "parse\[s\] the HTTP responses …
//!   \[which\] typically include offer details in JSON format" (§4.1);
//!   the offline dependency set has no `serde_json`, so we implement
//!   the format ourselves (and proptest the round trip).
//! * [`http`] — an HTTP/1.1 subset: request/response framing with
//!   `Content-Length` bodies, case-insensitive headers, incremental
//!   parsing. Every simulated service speaks it.
//! * [`url`] — minimal URL splitting for the client.
//! * [`tls`] — a TLS-*like* protocol: certificate chains, trust roots,
//!   SNI, certificate pinning, encrypted+authenticated records, and a
//!   MITM proxy that re-signs leaf certificates with an installed root
//!   CA — the mechanism behind the paper's mitmproxy setup ("We decrypt
//!   this traffic by installing a self-signed certificate … since none
//!   of the offer walls uses certificate pinning", §4.1 fn 5).
//!   **Not cryptography**: the primitives are hash-based toys that are
//!   structurally faithful (chain validation, MAC-detected tampering,
//!   pin failures) but offer zero security. The study needs the
//!   *mechanics*, not the math.
//! * [`client`] — a blocking HTTP(S) client with a [`RetryPolicy`]
//!   (budget, exponential backoff with seeded jitter, per-exchange
//!   deadline), used by the crawler, the milkers, and the honey app's
//!   uploader.
//! * [`server`] — adapters turning an [`http::Handler`] into a netsim
//!   session factory, optionally behind TLS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod tls;
pub mod url;

pub use client::{ClientState, HttpClient, RetryPolicy};
pub use http::{Handler, Request, RequestView, Response, ResponseView};
pub use json::{Event as JsonEvent, Json, Scanner as JsonScanner};
pub use url::Url;
