//! The blocking HTTP(S) client used by every measurement component:
//! the honey app's telemetry uploader, the Play Store crawler, the
//! offer-wall milkers, and ordinary simulated devices.
//!
//! Features the pipeline needs:
//!
//! * HTTPS with chain validation against the client's trust store;
//! * optional per-host certificate pinning (the ablation knob);
//! * proxy mode — connect every TLS session to a fixed proxy endpoint
//!   while keeping the real hostname as SNI, which is how the monitored
//!   phone's traffic reaches the MITM proxy (§4.1, Figure 3);
//! * bounded retries over the fault-injected substrate.

use crate::http::{Request, Response};
use crate::tls::{TlsClient, TrustStore};
use crate::url::Url;
use crate::Json;
use iiscope_netsim::{ClientConn, HostAddr, Network};
use iiscope_types::{Error, Result, SeedFork};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A reusable HTTP(S) client bound to one simulated host.
pub struct HttpClient {
    net: Network,
    from: HostAddr,
    roots: TrustStore,
    pins: HashMap<String, u64>,
    proxy: Option<(Ipv4Addr, u16)>,
    retries: u32,
    rng: StdRng,
}

impl HttpClient {
    /// Creates a client originating from `from`, trusting `roots`.
    pub fn new(net: Network, from: HostAddr, roots: TrustStore, seed: SeedFork) -> HttpClient {
        HttpClient {
            net,
            from,
            roots,
            pins: HashMap::new(),
            proxy: None,
            retries: 2,
            rng: seed.fork("http-client").rng(),
        }
    }

    /// Routes all HTTPS connections through `(ip, port)` — the MITM
    /// proxy position.
    pub fn via_proxy(mut self, ip: Ipv4Addr, port: u16) -> HttpClient {
        self.proxy = Some((ip, port));
        self
    }

    /// Pins `host` to an expected leaf public key.
    pub fn with_pin(mut self, host: impl Into<String>, key: u64) -> HttpClient {
        self.pins.insert(host.into(), key);
        self
    }

    /// Sets the retry budget for dropped exchanges.
    pub fn with_retries(mut self, retries: u32) -> HttpClient {
        self.retries = retries;
        self
    }

    /// The client's own network location.
    pub fn from_addr(&self) -> HostAddr {
        self.from
    }

    /// GET `url`.
    pub fn get(&mut self, url: &str) -> Result<Response> {
        let url = Url::parse(url)?;
        let req = Request::get(url.target.clone());
        self.dispatch(req, &url)
    }

    /// POST a JSON body to `url`.
    pub fn post_json(&mut self, url: &str, body: &Json) -> Result<Response> {
        let url = Url::parse(url)?;
        let mut req = Request::post(url.target.clone(), body.to_bytes());
        req.headers.set("Content-Type", "application/json");
        self.dispatch(req, &url)
    }

    /// POST raw bytes to `url`.
    pub fn post_bytes(
        &mut self,
        url: &str,
        body: impl Into<bytes::Bytes>,
        content_type: &str,
    ) -> Result<Response> {
        let url = Url::parse(url)?;
        let mut req = Request::post(url.target.clone(), body);
        req.headers.set("Content-Type", content_type);
        self.dispatch(req, &url)
    }

    /// Sends a prepared request to a parsed URL, with retries.
    pub fn dispatch(&mut self, mut req: Request, url: &Url) -> Result<Response> {
        req.headers.set("Host", url.host.clone());
        let mut last_err = Error::Network("no attempt made".into());
        for _attempt in 0..=self.retries {
            match self.attempt(&req, url) {
                Ok(resp) => return Ok(resp),
                // Only transport-level losses are worth retrying;
                // validation failures (denied) are deterministic.
                Err(e @ Error::Network(_)) => last_err = e,
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    fn connect(&self, url: &Url) -> Result<ClientConn> {
        match (self.proxy, url.is_tls()) {
            (Some((ip, port)), true) => self.net.connect(self.from, ip, port),
            _ => self
                .net
                .connect_host(self.from, &url.host, url.effective_port()),
        }
    }

    fn attempt(&mut self, req: &Request, url: &Url) -> Result<Response> {
        let conn = self.connect(url)?;
        let reply = if url.is_tls() {
            let pin = self.pins.get(&url.host).copied();
            let mut tls = TlsClient::connect(conn, &url.host, &self.roots, pin, &mut self.rng)?;
            tls.request(&req.encode())?
        } else {
            let mut conn = conn;
            conn.send(&req.encode());
            conn.roundtrip()?
        };
        // Zero-copy parse: the response body stays a slice of the
        // reply slab shared with the connection's capture log.
        match Response::parse_bytes(&reply)? {
            Some((resp, _)) => Ok(resp),
            // An empty or partial reply (proxy stall, upstream died) is
            // worth retrying on a fresh connection.
            None => Err(Error::Network("truncated response".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Handler, RequestCtx};
    use crate::server::{HttpFactory, HttpsFactory};
    use crate::tls::{CertAuthority, ServerIdentity};
    use iiscope_netsim::{AsnId, AsnKind, FaultPlan};
    use iiscope_types::Country;
    use std::sync::Arc;

    fn handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, _ctx: &RequestCtx| -> Response {
            match req.path() {
                "/hello" => Response::ok_text("world"),
                "/json" => Response::ok_json(&Json::obj([("v", Json::Int(7))])),
                "/reflect" => Response::ok_bytes(req.body.clone(), "application/octet-stream"),
                _ => Response::not_found(),
            }
        })
    }

    fn client_addr() -> HostAddr {
        HostAddr {
            ip: Ipv4Addr::new(192, 168, 0, 2),
            asn: AsnId(1),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        }
    }

    struct Rig {
        net: Network,
        roots: TrustStore,
        server_key: u64,
    }

    fn rig() -> Rig {
        let seed = SeedFork::new(31);
        let net = Network::new(seed.fork("net"));
        // Plain HTTP on port 80.
        let http_ip = Ipv4Addr::new(10, 0, 1, 1);
        net.bind(http_ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        net.register_host("plain.test", http_ip);
        // HTTPS on 443.
        let mut ca = CertAuthority::new("Root", seed.fork("ca"));
        let identity = ServerIdentity::issue(&mut ca, "secure.test", seed.fork("id"));
        let server_key = identity.keys.public;
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let https_ip = Ipv4Addr::new(10, 0, 1, 2);
        net.bind(
            https_ip,
            443,
            Arc::new(HttpsFactory::new(handler(), identity, seed.fork("https"))),
        )
        .unwrap();
        net.register_host("secure.test", https_ip);
        Rig {
            net,
            roots,
            server_key,
        }
    }

    #[test]
    fn plain_get() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(1));
        let resp = c.get("http://plain.test/hello").unwrap();
        assert_eq!(resp.body_text(), "world");
    }

    #[test]
    fn https_get_and_post() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(2));
        let resp = c.get("https://secure.test/json").unwrap();
        assert_eq!(
            resp.body_json().unwrap().get("v").and_then(Json::as_i64),
            Some(7)
        );
        let resp = c
            .post_json("https://secure.test/reflect", &Json::arr([Json::Int(1)]))
            .unwrap();
        assert_eq!(resp.body_text(), "[1]");
    }

    #[test]
    fn retries_survive_moderate_loss() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(0.3, 0.0));
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(3))
            .with_retries(25);
        // With 25 retries at 30% loss/exchange, failure probability is
        // negligible; run several requests to exercise the retry path.
        for _ in 0..10 {
            assert_eq!(
                c.get("http://plain.test/hello").unwrap().body_text(),
                "world"
            );
        }
    }

    #[test]
    fn exhausted_retries_error() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(1.0, 0.0));
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(4))
            .with_retries(2);
        assert_eq!(
            c.get("http://plain.test/hello").unwrap_err().kind(),
            "network"
        );
    }

    #[test]
    fn pin_mismatch_is_not_retried() {
        let r = rig();
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(5))
            .with_pin("secure.test", r.server_key ^ 1)
            .with_retries(50);
        let err = c.get("https://secure.test/hello").unwrap_err();
        assert_eq!(err.kind(), "denied");
        let correct = HttpClient::new(r.net, client_addr(), rig().roots, SeedFork::new(6))
            .with_pin("secure.test", r.server_key);
        let mut correct = correct;
        assert!(correct.get("https://secure.test/hello").is_ok());
    }

    #[test]
    fn unknown_host_fails() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(7));
        assert!(c.get("http://ghost.test/").is_err());
    }
}
