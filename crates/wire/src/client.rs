//! The blocking HTTP(S) client used by every measurement component:
//! the honey app's telemetry uploader, the Play Store crawler, the
//! offer-wall milkers, and ordinary simulated devices.
//!
//! Features the pipeline needs:
//!
//! * HTTPS with chain validation against the client's trust store;
//! * optional per-host certificate pinning (the ablation knob);
//! * proxy mode — connect every TLS session to a fixed proxy endpoint
//!   while keeping the real hostname as SNI, which is how the monitored
//!   phone's traffic reaches the MITM proxy (§4.1, Figure 3);
//! * a [`RetryPolicy`] governing retries over the fault-injected
//!   substrate: a budget charged once per exchange, optional
//!   exponential backoff with seeded jitter, and a per-exchange
//!   deadline — all error-class-aware (only transport losses retry).

use crate::http::{Request, Response};
use crate::tls::{TlsClient, TrustStore};
use crate::url::Url;
use crate::Json;
use iiscope_netsim::{ClientConn, HostAddr, Network, TIMEOUT};
use iiscope_types::{chaosstats, Error, Result, SeedFork, SimDuration};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How an [`HttpClient`] retries a failed exchange.
///
/// The budget is charged **exactly once per exchange attempt**, no
/// matter how many faults fire inside it (a corrupted handshake *and*
/// a dropped reply in one attempt still cost one unit). Backoff time
/// is accounted against the per-exchange deadline and the
/// [`chaosstats`] counters rather than advancing any clock: the
/// turn-based simulation has no idle waiting, so backoff exists to
/// bound an exchange, not to reschedule it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Number of *re*-attempts after the first (total attempts =
    /// `budget + 1`).
    pub budget: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: SimDuration,
    /// Cap on a single backoff step.
    pub max_backoff: SimDuration,
    /// Multiply each backoff by a seeded uniform factor in `[0.5, 1.5)`
    /// (decorrelates retry storms across clients).
    pub jitter: bool,
    /// Give up once the exchange's accounted time (timeouts + backoff)
    /// reaches this bound, even with budget left.
    pub deadline: Option<SimDuration>,
}

impl RetryPolicy {
    /// Retry immediately up to `budget` times: no backoff, no deadline.
    /// The legacy bare-retry-budget behaviour.
    pub fn immediate(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            base_backoff: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter: false,
            deadline: None,
        }
    }

    /// Exponential backoff with seeded jitter and a deadline sized so
    /// the whole exchange stays bounded: 2 s base doubling to a 60 s
    /// cap, giving up after 10 simulated minutes of accounted time.
    pub fn exponential(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            base_backoff: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(60),
            jitter: true,
            deadline: Some(SimDuration::from_mins(10)),
        }
    }

    /// Backoff before retry number `retry` (1-based). Draws from `rng`
    /// only when jitter is enabled *and* the step is non-zero, so
    /// zero-backoff policies consume no RNG.
    fn backoff_step(&self, retry: u32, rng: &mut impl Rng) -> SimDuration {
        let base = self.base_backoff.secs();
        if base == 0 {
            return SimDuration::ZERO;
        }
        let exp = base.saturating_mul(1u64 << (retry - 1).min(32));
        let capped = exp.min(self.max_backoff.secs().max(base));
        let secs = if self.jitter {
            let factor: f64 = 0.5 + rng.gen::<f64>();
            (capped as f64 * factor).round() as u64
        } else {
            capped
        };
        SimDuration::from_secs(secs)
    }
}

/// The serializable mutable state of an [`HttpClient`]: everything a
/// client with the same seed and configuration needs to continue its
/// RNG and fault-stream lineage bit-for-bit after a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientState {
    /// Keystream position of the jitter/TLS RNG.
    pub rng: rand::rngs::RngState,
    /// Next connection index (selects `links.fork_idx("conn", n)`).
    pub conn_seq: u64,
}

/// A reusable HTTP(S) client bound to one simulated host.
pub struct HttpClient {
    net: Network,
    from: HostAddr,
    roots: TrustStore,
    pins: HashMap<String, u64>,
    proxy: Option<(Ipv4Addr, u16)>,
    retry: RetryPolicy,
    rng: StdRng,
    /// Seed lineage for this client's links: connection `n` gets
    /// `links.fork_idx("conn", n)`, making its fault stream a pure
    /// function of the client seed — independent of global connection
    /// order, hence stable across parallel schedules.
    links: SeedFork,
    conn_seq: u64,
}

impl HttpClient {
    /// Creates a client originating from `from`, trusting `roots`.
    pub fn new(net: Network, from: HostAddr, roots: TrustStore, seed: SeedFork) -> HttpClient {
        HttpClient {
            net,
            from,
            roots,
            pins: HashMap::new(),
            proxy: None,
            retry: RetryPolicy::immediate(2),
            rng: seed.fork("http-client").rng(),
            links: seed.fork("links"),
            conn_seq: 0,
        }
    }

    /// Routes all HTTPS connections through `(ip, port)` — the MITM
    /// proxy position.
    pub fn via_proxy(mut self, ip: Ipv4Addr, port: u16) -> HttpClient {
        self.proxy = Some((ip, port));
        self
    }

    /// Pins `host` to an expected leaf public key.
    pub fn with_pin(mut self, host: impl Into<String>, key: u64) -> HttpClient {
        self.pins.insert(host.into(), key);
        self
    }

    /// Sets the retry budget for dropped exchanges (immediate retries,
    /// no backoff — shorthand for [`RetryPolicy::immediate`]).
    pub fn with_retries(mut self, retries: u32) -> HttpClient {
        self.retry = RetryPolicy::immediate(retries);
        self
    }

    /// Sets the full retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> HttpClient {
        self.retry = policy;
        self
    }

    /// The client's own network location.
    pub fn from_addr(&self) -> HostAddr {
        self.from
    }

    /// Captures the client's mutable state for checkpointing: the
    /// jitter/TLS RNG position and the connection sequence number
    /// (which indexes the per-connection fault-stream forks). Together
    /// with the constructor seed these fully determine all future
    /// connections, so a restored client continues bit-for-bit.
    pub fn checkpoint(&self) -> ClientState {
        ClientState {
            rng: self.rng.state(),
            conn_seq: self.conn_seq,
        }
    }

    /// Restores state captured by [`HttpClient::checkpoint`] onto a
    /// freshly constructed client with the same seed and configuration.
    pub fn restore(&mut self, state: &ClientState) {
        self.rng = StdRng::restore(state.rng);
        self.conn_seq = state.conn_seq;
    }

    /// GET `url`.
    pub fn get(&mut self, url: &str) -> Result<Response> {
        let url = Url::parse(url)?;
        let req = Request::get(url.target.clone());
        self.dispatch(req, &url)
    }

    /// POST a JSON body to `url`.
    pub fn post_json(&mut self, url: &str, body: &Json) -> Result<Response> {
        let url = Url::parse(url)?;
        let mut req = Request::post(url.target.clone(), body.to_bytes());
        req.headers.set("Content-Type", "application/json");
        self.dispatch(req, &url)
    }

    /// POST raw bytes to `url`.
    pub fn post_bytes(
        &mut self,
        url: &str,
        body: impl Into<bytes::Bytes>,
        content_type: &str,
    ) -> Result<Response> {
        let url = Url::parse(url)?;
        let mut req = Request::post(url.target.clone(), body);
        req.headers.set("Content-Type", content_type);
        self.dispatch(req, &url)
    }

    /// Sends a prepared request to a parsed URL, governed by the
    /// client's [`RetryPolicy`].
    ///
    /// The budget is decremented once per exchange attempt — an
    /// attempt that suffers several faults (say a corrupted request
    /// *and* a dropped reply) still costs a single unit. Between
    /// attempts, backoff time is computed (with seeded jitter) and
    /// charged against the deadline; when the accounted exchange time
    /// passes the deadline the client gives up with budget to spare.
    pub fn dispatch(&mut self, mut req: Request, url: &Url) -> Result<Response> {
        req.headers.set("Host", url.host.clone());
        let policy = self.retry;
        let mut elapsed = SimDuration::ZERO;
        let mut last_err = Error::Network("no attempt made".into());
        for attempt in 0..=policy.budget {
            if attempt > 0 {
                chaosstats::add_retries(1);
                let backoff = policy.backoff_step(attempt, &mut self.rng);
                if backoff > SimDuration::ZERO {
                    chaosstats::add_backoff_secs(backoff.secs());
                    elapsed = elapsed + backoff;
                }
                if let Some(deadline) = policy.deadline {
                    if elapsed >= deadline {
                        chaosstats::add_deadline_exceeded(1);
                        return Err(last_err);
                    }
                }
            }
            match self.attempt(&req, url) {
                Ok(resp) => return Ok(resp),
                // Only transport-level losses are worth retrying;
                // validation failures (denied) are deterministic.
                Err(e @ Error::Network(_)) => {
                    // A failed exchange costs (at least) the link
                    // timeout of local time; account it toward the
                    // deadline.
                    elapsed = elapsed + TIMEOUT;
                    last_err = e;
                }
                Err(e) => return Err(e),
            }
        }
        chaosstats::add_give_ups(1);
        Err(last_err)
    }

    fn connect(&mut self, url: &Url) -> Result<ClientConn> {
        let link = self.links.fork_idx("conn", self.conn_seq);
        self.conn_seq += 1;
        match (self.proxy, url.is_tls()) {
            (Some((ip, port)), true) => self.net.connect_seeded(self.from, ip, port, link),
            _ => self
                .net
                .connect_host_seeded(self.from, &url.host, url.effective_port(), link),
        }
    }

    fn attempt(&mut self, req: &Request, url: &Url) -> Result<Response> {
        let conn = self.connect(url)?;
        let reply = if url.is_tls() {
            let pin = self.pins.get(&url.host).copied();
            let mut tls = TlsClient::connect(conn, &url.host, &self.roots, pin, &mut self.rng)?;
            tls.request(&req.encode())?
        } else {
            let mut conn = conn;
            conn.send(&req.encode());
            conn.roundtrip()?
        };
        // Zero-copy parse: the response body stays a slice of the
        // reply slab shared with the connection's capture log.
        match Response::parse_bytes(&reply)? {
            Some((resp, _)) => Ok(resp),
            // An empty or partial reply (proxy stall, upstream died) is
            // worth retrying on a fresh connection.
            None => Err(Error::Network("truncated response".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Handler, RequestCtx};
    use crate::server::{HttpFactory, HttpsFactory};
    use crate::tls::{CertAuthority, ServerIdentity};
    use iiscope_netsim::{AsnId, AsnKind, FaultPlan};
    use iiscope_types::{Country, SimDuration};
    use std::sync::Arc;

    fn handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, _ctx: &RequestCtx| -> Response {
            match req.path() {
                "/hello" => Response::ok_text("world"),
                "/json" => Response::ok_json(&Json::obj([("v", Json::Int(7))])),
                "/reflect" => Response::ok_bytes(req.body.clone(), "application/octet-stream"),
                _ => Response::not_found(),
            }
        })
    }

    fn client_addr() -> HostAddr {
        HostAddr {
            ip: Ipv4Addr::new(192, 168, 0, 2),
            asn: AsnId(1),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        }
    }

    struct Rig {
        net: Network,
        roots: TrustStore,
        server_key: u64,
    }

    fn rig() -> Rig {
        let seed = SeedFork::new(31);
        let net = Network::new(seed.fork("net"));
        // Plain HTTP on port 80.
        let http_ip = Ipv4Addr::new(10, 0, 1, 1);
        net.bind(http_ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        net.register_host("plain.test", http_ip);
        // HTTPS on 443.
        let mut ca = CertAuthority::new("Root", seed.fork("ca"));
        let identity = ServerIdentity::issue(&mut ca, "secure.test", seed.fork("id"));
        let server_key = identity.keys.public;
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let https_ip = Ipv4Addr::new(10, 0, 1, 2);
        net.bind(
            https_ip,
            443,
            Arc::new(HttpsFactory::new(handler(), identity, seed.fork("https"))),
        )
        .unwrap();
        net.register_host("secure.test", https_ip);
        Rig {
            net,
            roots,
            server_key,
        }
    }

    #[test]
    fn plain_get() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(1));
        let resp = c.get("http://plain.test/hello").unwrap();
        assert_eq!(resp.body_text(), "world");
    }

    #[test]
    fn https_get_and_post() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(2));
        let resp = c.get("https://secure.test/json").unwrap();
        assert_eq!(
            resp.body_json().unwrap().get("v").and_then(Json::as_i64),
            Some(7)
        );
        let resp = c
            .post_json("https://secure.test/reflect", &Json::arr([Json::Int(1)]))
            .unwrap();
        assert_eq!(resp.body_text(), "[1]");
    }

    #[test]
    fn retries_survive_moderate_loss() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(0.3, 0.0));
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(3))
            .with_retries(25);
        // With 25 retries at 30% loss/exchange, failure probability is
        // negligible; run several requests to exercise the retry path.
        for _ in 0..10 {
            assert_eq!(
                c.get("http://plain.test/hello").unwrap().body_text(),
                "world"
            );
        }
    }

    #[test]
    fn exhausted_retries_error() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(1.0, 0.0));
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(4))
            .with_retries(2);
        assert_eq!(
            c.get("http://plain.test/hello").unwrap_err().kind(),
            "network"
        );
    }

    #[test]
    fn pin_mismatch_is_not_retried() {
        let r = rig();
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(5))
            .with_pin("secure.test", r.server_key ^ 1)
            .with_retries(50);
        let err = c.get("https://secure.test/hello").unwrap_err();
        assert_eq!(err.kind(), "denied");
        let correct = HttpClient::new(r.net, client_addr(), rig().roots, SeedFork::new(6))
            .with_pin("secure.test", r.server_key);
        let mut correct = correct;
        assert!(correct.get("https://secure.test/hello").is_ok());
    }

    #[test]
    fn retry_budget_charged_once_per_exchange() {
        // Regression pin for retry accounting: an exchange that
        // suffers multiple faults (here every TLS handshake is
        // corrupted, so the attempt fails after a damaged request AND
        // a useless reply) must decrement the budget exactly once.
        // With a budget of 3 the client opens exactly 4 connections —
        // never 2 or 3 (double-charging), never 5+ (free retries).
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(0.0, 1.0));
        let before = r.net.metrics().connections;
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(8))
            .with_retries(3);
        let err = c.get("https://secure.test/json").unwrap_err();
        assert_eq!(err.kind(), "network");
        assert_eq!(r.net.metrics().connections - before, 4);
    }

    #[test]
    fn corrupted_then_dropped_exchange_charges_once() {
        // Both fault classes fire within single exchanges (corruption
        // on every delivery, half the deliveries dropped): the attempt
        // count still equals budget + 1.
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(0.5, 1.0));
        let before = r.net.metrics().connections;
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(9))
            .with_retries(5);
        assert!(c.get("https://secure.test/json").is_err());
        assert_eq!(r.net.metrics().connections - before, 6);
    }

    #[test]
    fn deadline_gives_up_with_budget_to_spare() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(1.0, 0.0));
        let policy = RetryPolicy {
            budget: 500,
            base_backoff: SimDuration::from_secs(60),
            max_backoff: SimDuration::from_secs(60),
            jitter: false,
            deadline: Some(SimDuration::from_secs(300)),
        };
        let before = r.net.metrics().connections;
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(10))
            .with_retry_policy(policy);
        assert!(c.get("http://plain.test/hello").is_err());
        // Each failed attempt accounts TIMEOUT (30 s) plus a 60 s
        // backoff; the 300 s deadline allows exactly 4 attempts.
        assert_eq!(r.net.metrics().connections - before, 4);
    }

    #[test]
    fn exponential_policy_survives_loss_like_immediate() {
        let r = rig();
        r.net.set_default_fault(FaultPlan::lossy(0.3, 0.0));
        let mut c = HttpClient::new(r.net.clone(), client_addr(), r.roots, SeedFork::new(11))
            .with_retry_policy(RetryPolicy::exponential(25));
        for _ in 0..10 {
            assert_eq!(
                c.get("http://plain.test/hello").unwrap().body_text(),
                "world"
            );
        }
    }

    #[test]
    fn unknown_host_fails() {
        let r = rig();
        let mut c = HttpClient::new(r.net, client_addr(), r.roots, SeedFork::new(7));
        assert!(c.get("http://ghost.test/").is_err());
    }
}
