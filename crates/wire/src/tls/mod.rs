//! A TLS-*like* protocol: structurally faithful, cryptographically a
//! toy.
//!
//! The monitoring infrastructure of §4.1 hinges on transport security
//! mechanics: "all offer walls use TLS encryption in their traffic. We
//! decrypt this traffic by installing a self-signed certificate on the
//! Android phone since none of the offer walls uses certificate
//! pinning." To reproduce that pipeline honestly we need:
//!
//! * certificates, chains, trust stores, SNI — so installing the
//!   monitor's root CA on a device *means something* ([`cert`]);
//! * an encrypted, integrity-protected record layer — so captured
//!   ciphertext is useless without a key position and fault-injected
//!   corruption is *detected*, not silently consumed ([`record`]);
//! * client/server handshake state machines ([`session`]);
//! * a man-in-the-middle proxy that forges leaf certificates on the
//!   fly and logs decrypted traffic ([`mitm`]) — failing exactly when
//!   a client pins its expected key.
//!
//! # Non-goals
//!
//! **This is not cryptography.** Keys are 64-bit, "signatures" are hash
//! mixes verifiable (and forgeable) with public values, and the cipher
//! is an xorshift keystream. What is faithful is the *protocol
//! structure*: who can read what, which validations run, and how
//! failures surface. That is all the study's methodology depends on.

pub mod cert;
pub mod mitm;
pub mod record;
pub mod session;

pub use cert::{CertAuthority, Certificate, KeyPair, TrustStore};
pub use mitm::{Intercept, InterceptLog, MitmProxy};
pub use record::{open_records, seal_records, RecordDecoder, RecordType};
pub use session::{ServerIdentity, TlsClient, TlsServerSession};
