//! TLS client/server session state machines over netsim connections.
//!
//! Handshake (one round trip, loosely TLS-shaped):
//!
//! ```text
//! client                                server
//!   | -- Handshake{client_hello sni,r_c} -> |
//!   | <- Handshake{server_hello r_s,chain}- |
//!   |   (both derive session key)           |
//!   | == AppData (encrypted, MACed) ======> |
//!   | <============================ AppData |
//! ```
//!
//! The client validates the presented chain against its trust store and
//! (optionally) a pinned leaf key. The server picks its identity by SNI
//! through an [`IdentityProvider`] — a level of indirection that lets
//! the MITM proxy forge a certificate for whatever name the client
//! asked for, which is precisely the §4.1 interception trick.

use super::cert::{mix, Certificate, KeyPair, TrustStore};
use super::record::{seal_records, seal_records_into, RecordDecoder, RecordType};
use crate::Json;
use bytes::Bytes;
use iiscope_netsim::{ClientConn, PeerInfo, ServerIo, Session};
use iiscope_types::{wirestats, Error, Result, SimTime};
use rand::Rng;

/// Derives the shared session key from both randoms and the leaf key.
fn derive_key(client_random: u64, server_random: u64, leaf_public: u64) -> u64 {
    mix(client_random ^ mix(server_random) ^ leaf_public.rotate_left(17))
}

/// A server's certificate chain plus its private key.
#[derive(Debug, Clone)]
pub struct ServerIdentity {
    /// Leaf-first certificate chain presented in the ServerHello.
    pub chain: Vec<Certificate>,
    /// The leaf key pair.
    pub keys: KeyPair,
}

impl ServerIdentity {
    /// Issues a fresh identity for `hostname` from `ca`.
    pub fn issue(
        ca: &mut super::cert::CertAuthority,
        hostname: &str,
        seed: iiscope_types::SeedFork,
    ) -> ServerIdentity {
        let keys = KeyPair::generate(seed.fork(hostname));
        let leaf = ca.issue(hostname, keys.public);
        ServerIdentity {
            chain: vec![leaf],
            keys,
        }
    }
}

/// Chooses the server identity for an SNI.
pub trait IdentityProvider: Send + Sync {
    /// Returns the identity to present for `sni`, or `None` to refuse
    /// the handshake.
    fn identity_for(&self, sni: &str) -> Option<ServerIdentity>;
}

/// The ordinary provider: one fixed identity, served only when its
/// leaf actually covers the requested name.
#[derive(Debug, Clone)]
pub struct FixedIdentity(pub ServerIdentity);

impl IdentityProvider for FixedIdentity {
    fn identity_for(&self, sni: &str) -> Option<ServerIdentity> {
        self.0
            .chain
            .first()
            .filter(|leaf| leaf.matches(sni))
            .map(|_| self.0.clone())
    }
}

/// The plaintext application layer living inside a TLS session.
pub trait PlainService: Send {
    /// Called once per turn with the decrypted bytes; returns the bytes
    /// to encrypt back. `data` is a shared slab (the record layer's
    /// decrypt buffer) — services and intercept taps alias it freely.
    fn on_data(&mut self, data: Bytes, peer: PeerInfo, now: SimTime) -> Bytes;

    /// Called once when the handshake completes, with the client's SNI.
    fn on_handshake(&mut self, _sni: &str) {}
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// An established client-side TLS session.
pub struct TlsClient {
    conn: ClientConn,
    key: u64,
    send_seq: u64,
    recv_seq: u64,
    /// The leaf certificate the server presented (inspectable by
    /// forensics code).
    pub leaf: Certificate,
}

impl std::fmt::Debug for TlsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsClient")
            .field("leaf", &self.leaf.subject)
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish_non_exhaustive()
    }
}

impl TlsClient {
    /// Performs the handshake over `conn` for `sni`.
    ///
    /// `pin` is an optional expected leaf public key: when set, the
    /// connection fails unless the presented leaf key matches —
    /// regardless of chain validity. This models the certificate
    /// pinning whose *absence* made the paper's interception possible.
    pub fn connect(
        mut conn: ClientConn,
        sni: &str,
        roots: &TrustStore,
        pin: Option<u64>,
        rng: &mut impl Rng,
    ) -> Result<TlsClient> {
        let client_random: u64 = rng.gen();
        let hello = Json::obj([
            ("type", Json::str("client_hello")),
            ("sni", Json::str(sni)),
            ("random", Json::str(format!("{client_random:016x}"))),
        ]);
        let mut hs_send = 0u64;
        let wire = seal_records(
            0,
            &mut hs_send,
            RecordType::Handshake,
            hello.to_string().as_bytes(),
        );
        conn.send(&wire);
        let reply = conn.roundtrip()?;

        let mut decoder = RecordDecoder::new();
        decoder.extend(&reply);
        let mut hs_recv = 0u64;
        let record = decoder
            .next_record(0, &mut hs_recv)?
            .ok_or_else(|| Error::Network("truncated server hello".into()))?;
        match record.rtype {
            RecordType::Alert => {
                return Err(Error::Network(format!(
                    "tls alert: {}",
                    String::from_utf8_lossy(&record.plaintext)
                )))
            }
            RecordType::Handshake => {}
            RecordType::AppData => return Err(Error::Network("app data before handshake".into())),
        }
        // Handshake-message damage is transport-level: fail as
        // Network so clients retry over a fresh connection.
        let hello_text = std::str::from_utf8(&record.plaintext)
            .map_err(|_| Error::Network("server hello not utf-8".into()))?;
        let hello_json = Json::parse(hello_text)
            .map_err(|e| Error::Network(format!("server hello unparseable: {e}")))?;
        if hello_json.get("type").and_then(Json::as_str) != Some("server_hello") {
            return Err(Error::Network("expected server_hello".into()));
        }
        let server_random = hello_json
            .get("random")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| Error::Decode("server hello missing random".into()))?;
        let chain: Vec<Certificate> = hello_json
            .get("chain")
            .and_then(Json::as_array)
            .ok_or_else(|| Error::Decode("server hello missing chain".into()))?
            .iter()
            .map(Certificate::from_json)
            .collect::<Result<_>>()?;

        let leaf_public = roots.verify_chain(&chain, sni)?;
        if let Some(expected) = pin {
            if leaf_public != expected {
                return Err(Error::Denied(format!(
                    "certificate pin mismatch for {sni}: got {leaf_public:016x}"
                )));
            }
        }
        Ok(TlsClient {
            conn,
            key: derive_key(client_random, server_random, leaf_public),
            send_seq: 0,
            recv_seq: 0,
            leaf: chain.into_iter().next().expect("verified non-empty"),
        })
    }

    /// Sends application bytes and returns the decrypted reply bytes of
    /// the same turn.
    pub fn request(&mut self, plaintext: &[u8]) -> Result<Bytes> {
        let wire = seal_records(self.key, &mut self.send_seq, RecordType::AppData, plaintext);
        self.conn.send(&wire);
        let reply = self.conn.roundtrip()?;
        super::record::open_records(self.key, &mut self.recv_seq, &reply)
    }

    /// The underlying connection id (for capture correlation).
    pub fn conn_id(&self) -> u64 {
        self.conn.conn_id()
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

enum ServerState {
    Handshaking {
        recv_seq: u64,
        send_seq: u64,
    },
    Established {
        key: u64,
        recv_seq: u64,
        send_seq: u64,
    },
    Dead,
}

/// Server-side TLS session adapting a [`PlainService`] onto a netsim
/// [`Session`].
pub struct TlsServerSession {
    provider: std::sync::Arc<dyn IdentityProvider>,
    service: Box<dyn PlainService>,
    decoder: RecordDecoder,
    state: ServerState,
    session_salt: u64,
}

impl TlsServerSession {
    /// Creates a session awaiting a ClientHello.
    ///
    /// `session_salt` feeds the server random; factories derive it per
    /// connection so randoms differ across sessions yet stay
    /// deterministic for a given world seed.
    pub fn new(
        provider: std::sync::Arc<dyn IdentityProvider>,
        service: Box<dyn PlainService>,
        session_salt: u64,
    ) -> TlsServerSession {
        TlsServerSession {
            provider,
            service,
            decoder: RecordDecoder::new(),
            state: ServerState::Handshaking {
                recv_seq: 0,
                send_seq: 0,
            },
            session_salt,
        }
    }

    fn fatal(&mut self, io: &mut ServerIo<'_>, key: u64, send_seq: &mut u64, reason: &str) {
        seal_records_into(
            io.outgoing(),
            key,
            send_seq,
            RecordType::Alert,
            reason.as_bytes(),
        );
        self.state = ServerState::Dead;
    }
}

impl Session for TlsServerSession {
    fn on_turn(&mut self, io: &mut ServerIo<'_>) {
        let data = io.recv_all();
        self.decoder.extend(&data);
        // Take the state out so we can mutate self uniformly.
        let state = std::mem::replace(&mut self.state, ServerState::Dead);
        match state {
            ServerState::Dead => { /* connection is dead: ignore input */ }
            ServerState::Handshaking {
                mut recv_seq,
                mut send_seq,
            } => {
                let record = match self.decoder.next_record(0, &mut recv_seq) {
                    Ok(Some(r)) => r,
                    Ok(None) => {
                        // Wait for more bytes.
                        self.state = ServerState::Handshaking { recv_seq, send_seq };
                        return;
                    }
                    Err(_) => {
                        self.fatal(io, 0, &mut send_seq, "bad_record_mac");
                        return;
                    }
                };
                if record.rtype != RecordType::Handshake {
                    self.fatal(io, 0, &mut send_seq, "unexpected_message");
                    return;
                }
                let hello = match std::str::from_utf8(&record.plaintext)
                    .ok()
                    .and_then(|t| Json::parse(t).ok())
                {
                    Some(h) => h,
                    None => {
                        self.fatal(io, 0, &mut send_seq, "decode_error");
                        return;
                    }
                };
                let sni = hello.get("sni").and_then(Json::as_str).unwrap_or_default();
                let client_random = hello
                    .get("random")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                let (sni, client_random) = match (sni, client_random) {
                    ("", _) | (_, None) => {
                        self.fatal(io, 0, &mut send_seq, "illegal_parameter");
                        return;
                    }
                    (s, Some(r)) => (s.to_string(), r),
                };
                let identity = match self.provider.identity_for(&sni) {
                    Some(id) => id,
                    None => {
                        self.fatal(io, 0, &mut send_seq, "unrecognized_name");
                        return;
                    }
                };
                let server_random = mix(self.session_salt ^ client_random);
                let reply = Json::obj([
                    ("type", Json::str("server_hello")),
                    ("random", Json::str(format!("{server_random:016x}"))),
                    (
                        "chain",
                        Json::arr(identity.chain.iter().map(Certificate::to_json)),
                    ),
                ]);
                seal_records_into(
                    io.outgoing(),
                    0,
                    &mut send_seq,
                    RecordType::Handshake,
                    reply.to_string().as_bytes(),
                );
                self.service.on_handshake(&sni);
                let key = derive_key(client_random, server_random, identity.keys.public);
                self.state = ServerState::Established {
                    key,
                    recv_seq: 0,
                    send_seq: 0,
                };
            }
            ServerState::Established {
                key,
                mut recv_seq,
                mut send_seq,
            } => {
                let mut parts: Vec<Bytes> = Vec::new();
                loop {
                    match self.decoder.next_record(key, &mut recv_seq) {
                        Ok(Some(r)) if r.rtype == RecordType::AppData => {
                            parts.push(r.plaintext);
                        }
                        Ok(Some(_)) => {
                            self.fatal(io, key, &mut send_seq, "unexpected_message");
                            return;
                        }
                        Ok(None) => break,
                        Err(_) => {
                            self.fatal(io, key, &mut send_seq, "bad_record_mac");
                            return;
                        }
                    }
                }
                // Single-record turns — every offer-wall-sized exchange
                // — hand the decrypt buffer straight to the service.
                let plaintext = match parts.len() {
                    0 => Bytes::new(),
                    1 => {
                        wirestats::add_record_passthrough(1);
                        parts.pop().expect("one part")
                    }
                    _ => {
                        let mut joined = Vec::with_capacity(parts.iter().map(Bytes::len).sum());
                        for p in &parts {
                            joined.extend_from_slice(p);
                        }
                        Bytes::from(joined)
                    }
                };
                let reply = self.service.on_data(plaintext, io.peer(), io.now());
                seal_records_into(
                    io.outgoing(),
                    key,
                    &mut send_seq,
                    RecordType::AppData,
                    &reply,
                );
                self.state = ServerState::Established {
                    key,
                    recv_seq,
                    send_seq,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::cert::CertAuthority;
    use iiscope_netsim::{AsnId, AsnKind, FaultPlan, HostAddr, Network, PeerInfo, SessionFactory};
    use iiscope_types::{Country, SeedFork};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    /// Plain echo service for tests.
    struct EchoPlain;
    impl PlainService for EchoPlain {
        fn on_data(&mut self, data: Bytes, _peer: PeerInfo, _now: SimTime) -> Bytes {
            let mut out = b"tls-echo:".to_vec();
            out.extend_from_slice(&data);
            out.into()
        }
    }

    struct EchoFactory {
        provider: Arc<dyn IdentityProvider>,
        seed: SeedFork,
        counter: std::sync::atomic::AtomicU64,
    }

    impl SessionFactory for EchoFactory {
        fn open(&self, _peer: PeerInfo) -> Box<dyn Session> {
            let n = self
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Box::new(TlsServerSession::new(
                Arc::clone(&self.provider),
                Box::new(EchoPlain),
                self.seed.fork_idx("session", n).seed(),
            ))
        }
    }

    struct World {
        net: Network,
        roots: TrustStore,
        server_key: u64,
        client: HostAddr,
        ip: Ipv4Addr,
    }

    fn world() -> World {
        let seed = SeedFork::new(99);
        let net = Network::new(seed.fork("net"));
        let mut ca = CertAuthority::new("iiscope Root CA", seed.fork("ca"));
        let identity = ServerIdentity::issue(&mut ca, "wall.fyber.iiscope", seed.fork("id"));
        let server_key = identity.keys.public;
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let ip = Ipv4Addr::new(10, 1, 1, 1);
        net.bind(
            ip,
            443,
            Arc::new(EchoFactory {
                provider: Arc::new(FixedIdentity(identity)),
                seed: seed.fork("sessions"),
                counter: Default::default(),
            }),
        )
        .unwrap();
        net.register_host("wall.fyber.iiscope", ip);
        let client = HostAddr {
            ip: Ipv4Addr::new(172, 16, 0, 9),
            asn: AsnId(1),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        };
        World {
            net,
            roots,
            server_key,
            client,
            ip,
        }
    }

    #[test]
    fn handshake_and_echo() {
        let w = world();
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let mut rng = SeedFork::new(1).rng();
        let mut tls =
            TlsClient::connect(conn, "wall.fyber.iiscope", &w.roots, None, &mut rng).unwrap();
        assert_eq!(tls.request(b"offers").unwrap(), b"tls-echo:offers");
        assert_eq!(tls.request(b"again").unwrap(), b"tls-echo:again");
    }

    #[test]
    fn untrusted_client_rejects_chain() {
        let w = world();
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let mut rng = SeedFork::new(2).rng();
        let empty = TrustStore::new();
        let err =
            TlsClient::connect(conn, "wall.fyber.iiscope", &empty, None, &mut rng).unwrap_err();
        assert_eq!(err.kind(), "denied");
    }

    #[test]
    fn sni_mismatch_gets_alert() {
        let w = world();
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let mut rng = SeedFork::new(3).rng();
        let err = TlsClient::connect(conn, "other.example", &w.roots, None, &mut rng).unwrap_err();
        assert_eq!(err.kind(), "network");
        assert!(err.to_string().contains("unrecognized_name"));
    }

    #[test]
    fn correct_pin_passes_wrong_pin_fails() {
        let w = world();
        let mut rng = SeedFork::new(4).rng();
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        assert!(TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &w.roots,
            Some(w.server_key),
            &mut rng
        )
        .is_ok());
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let err = TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &w.roots,
            Some(w.server_key ^ 1),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "denied");
    }

    #[test]
    fn capture_shows_only_ciphertext() {
        let w = world();
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let mut rng = SeedFork::new(5).rng();
        let mut tls =
            TlsClient::connect(conn, "wall.fyber.iiscope", &w.roots, None, &mut rng).unwrap();
        tls.request(b"super-secret-offer-wall-body").unwrap();
        let leaked = w
            .net
            .capture()
            .snapshot()
            .iter()
            .any(|r| r.bytes.windows(12).any(|win| win == b"super-secret"));
        assert!(!leaked, "application plaintext visible in capture");
    }

    #[test]
    fn corruption_on_the_wire_fails_cleanly() {
        let w = world();
        // Corrupt *after* handshake only: set per-service fault now.
        let conn = w.net.connect(w.client, w.ip, 443).unwrap();
        let mut rng = SeedFork::new(6).rng();
        let mut tls =
            TlsClient::connect(conn, "wall.fyber.iiscope", &w.roots, None, &mut rng).unwrap();
        w.net.set_service_fault(
            iiscope_netsim::ServiceBinding {
                ip: w.ip,
                port: 443,
            },
            FaultPlan::lossy(0.0, 1.0),
        );
        // New connections get the faulty plan; existing conn keeps the
        // clean one — verify both behaviours.
        assert!(tls.request(b"ok").is_ok());
        let conn2 = w.net.connect(w.client, w.ip, 443).unwrap();
        let res = TlsClient::connect(conn2, "wall.fyber.iiscope", &w.roots, None, &mut rng);
        // Corrupted handshake must fail (either MAC error or alert).
        assert!(res.is_err());
    }
}
