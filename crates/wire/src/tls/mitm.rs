//! The interception proxy — this repo's `mitmproxy`.
//!
//! Figure 3 of the paper: the Android phone's traffic is routed through
//! a proxy server that terminates TLS using a certificate the
//! researchers installed on the phone, re-encrypts toward the real
//! offer-wall servers, and exposes the decrypted HTTP exchange to the
//! parsing pipeline. Mechanically:
//!
//! * the proxy is a [`SessionFactory`]: every device connection gets a
//!   [`TlsServerSession`] whose [`IdentityProvider`] *forges* a leaf
//!   certificate for whatever SNI the client requested, signed by the
//!   monitor's own CA;
//! * a device that installed the monitor CA in its trust store
//!   completes the handshake; a device that *pins* the real service key
//!   fails it (the paper: "none of the offer walls uses certificate
//!   pinning" — the ablation bench flips this);
//! * decrypted request/response bodies are appended to the shared
//!   [`InterceptLog`], which is what the §4.1 parsers consume;
//! * upstream, the proxy is an ordinary TLS client that validates the
//!   genuine chain.

use super::cert::{CertAuthority, KeyPair, TrustStore};
use super::session::{IdentityProvider, PlainService, ServerIdentity, TlsClient, TlsServerSession};
use bytes::Bytes;
#[cfg(test)]
use iiscope_netsim::HostAddr;
use iiscope_netsim::{Direction, Network, PeerInfo, Session, SessionFactory};
use iiscope_types::{SeedFork, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One decrypted message observed by the proxy.
#[derive(Debug, Clone)]
pub struct Intercept {
    /// When the plaintext crossed the proxy.
    pub at: SimTime,
    /// The SNI the device asked for (i.e. which service this is).
    pub sni: String,
    /// Direction relative to the device.
    pub dir: Direction,
    /// Decrypted bytes (HTTP on every service in this world). A
    /// refcounted view of the record layer's decrypt buffer — logging
    /// an exchange does not copy it.
    pub plaintext: Bytes,
}

/// Shared, append-only log of decrypted traffic.
#[derive(Debug, Clone, Default)]
pub struct InterceptLog {
    inner: Arc<Mutex<Vec<Intercept>>>,
}

thread_local! {
    /// Active [`InterceptLog::tap_scope`] on this thread: the tapped
    /// log's identity plus the private capture buffer.
    static TAP: std::cell::RefCell<Option<(usize, Vec<Intercept>)>> =
        const { std::cell::RefCell::new(None) };
}

/// Clears the thread-local tap if `tap_scope`'s closure unwinds, so a
/// caught panic can't leave a stale tap on a reused thread.
struct TapGuard;

impl Drop for TapGuard {
    fn drop(&mut self) {
        TAP.with(|t| t.borrow_mut().take());
    }
}

impl InterceptLog {
    /// Creates an empty log.
    pub fn new() -> InterceptLog {
        InterceptLog::default()
    }

    /// Identity of the shared buffer, for tap matching.
    fn key(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Appends one intercept. Diverted into the thread-local tap
    /// buffer instead when this thread is inside a [`tap_scope`] on
    /// this log.
    ///
    /// [`tap_scope`]: InterceptLog::tap_scope
    pub fn push(&self, i: Intercept) {
        let passed_through = TAP.with(|t| {
            let mut t = t.borrow_mut();
            match t.as_mut() {
                Some((key, buf)) if *key == self.key() => {
                    buf.push(i);
                    None
                }
                _ => Some(i),
            }
        });
        if let Some(i) = passed_through {
            self.inner.lock().push(i);
        }
    }

    /// Runs `f` with a tap installed on this thread: every intercept
    /// the thread pushes to *this* log during `f` lands in a private
    /// buffer (returned alongside `f`'s result) instead of the shared
    /// log. The whole netsim stack is synchronous — a proxy session
    /// runs on the thread of the client that dialed it — so a tap
    /// captures exactly the traffic caused by `f`, which is what lets
    /// concurrent milking jobs keep their intercepts apart without
    /// observing each other through the shared log.
    ///
    /// Taps do not nest (on the same thread), and pushes to *other*
    /// logs pass through untouched.
    pub fn tap_scope<R>(&self, f: impl FnOnce() -> R) -> (R, Vec<Intercept>) {
        TAP.with(|t| {
            let prev = t.borrow_mut().replace((self.key(), Vec::new()));
            assert!(prev.is_none(), "nested InterceptLog::tap_scope");
        });
        let guard = TapGuard;
        let out = f();
        std::mem::forget(guard);
        let captured = TAP
            .with(|t| t.borrow_mut().take())
            .map(|(_, buf)| buf)
            .unwrap_or_default();
        (out, captured)
    }

    /// Number of intercepts.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing was intercepted.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Snapshot of everything.
    pub fn snapshot(&self) -> Vec<Intercept> {
        self.inner.lock().clone()
    }

    /// Server→device plaintext bodies for one SNI — the offer-wall
    /// responses the parsers want.
    pub fn responses_for(&self, sni: &str) -> Vec<Bytes> {
        self.inner
            .lock()
            .iter()
            .filter(|i| i.sni == sni && i.dir == Direction::ToClient)
            .map(|i| i.plaintext.clone())
            .collect()
    }

    /// Clears the log.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Takes every intercept, leaving the log empty — the pipeline's
    /// consume-as-you-parse mode, which keeps long milking runs from
    /// accumulating every page body in memory.
    pub fn take_all(&self) -> Vec<Intercept> {
        std::mem::take(&mut *self.inner.lock())
    }
}

/// Identity provider that forges a certificate for any SNI, signed by
/// the monitor CA.
struct ForgingProvider {
    ca: Mutex<CertAuthority>,
    seed: SeedFork,
}

impl IdentityProvider for ForgingProvider {
    fn identity_for(&self, sni: &str) -> Option<ServerIdentity> {
        let keys = KeyPair::generate(self.seed.fork("forged-leaf").fork(sni));
        let leaf = self.ca.lock().issue(sni, keys.public);
        Some(ServerIdentity {
            chain: vec![leaf],
            keys,
        })
    }
}

/// Per-connection plaintext forwarder: device-side plaintext in,
/// upstream TLS request out, response plaintext back.
struct Forwarder {
    net: Network,
    upstream_roots: TrustStore,
    upstream_port: u16,
    log: InterceptLog,
    sni: Option<String>,
    upstream: Option<TlsClient>,
    rng: rand::rngs::StdRng,
    /// Upstream re-dials this forwarder has made, indexing the dial's
    /// link seed off the device connection's lineage.
    dial_seq: u64,
}

impl PlainService for Forwarder {
    fn on_handshake(&mut self, sni: &str) {
        self.sni = Some(sni.to_string());
    }

    fn on_data(&mut self, data: Bytes, peer: PeerInfo, now: SimTime) -> Bytes {
        let sni = match &self.sni {
            Some(s) => s.clone(),
            None => return Bytes::new(),
        };
        if data.is_empty() {
            return Bytes::new();
        }
        self.log.push(Intercept {
            at: now,
            sni: sni.clone(),
            dir: Direction::ToServer,
            plaintext: data.clone(),
        });
        // Lazily dial upstream on first use — *as the client*: the
        // proxy is transparent w.r.t. egress (mitmproxy runs beside
        // the phone; the VPN vantage address is what services see),
        // which keeps geo-targeted offers visible per vantage point.
        // The dial's link seed forks off the device connection's
        // lineage, so the upstream fault stream is a pure function of
        // the originating client — not of global connection order.
        if self.upstream.is_none() {
            let link = peer.link.fork_idx("mitm-upstream", self.dial_seq);
            self.dial_seq += 1;
            let conn = match self
                .net
                .connect_host_seeded(peer.addr, &sni, self.upstream_port, link)
            {
                Ok(c) => c,
                Err(_) => return Bytes::new(), // upstream unreachable: stall
            };
            match TlsClient::connect(conn, &sni, &self.upstream_roots, None, &mut self.rng) {
                Ok(tls) => self.upstream = Some(tls),
                Err(_) => return Bytes::new(),
            }
        }
        let reply = match self.upstream.as_mut().expect("just set").request(&data) {
            Ok(r) => r,
            Err(_) => {
                // Upstream died mid-session; force a re-dial next turn.
                self.upstream = None;
                return Bytes::new();
            }
        };
        self.log.push(Intercept {
            at: now,
            sni,
            dir: Direction::ToClient,
            plaintext: reply.clone(),
        });
        reply
    }
}

/// The interception proxy service. Bind it on the network and point
/// device HTTP clients at it (see `HttpClient::via_proxy`).
pub struct MitmProxy {
    provider: Arc<dyn IdentityProvider>,
    net: Network,
    upstream_roots: TrustStore,
    upstream_port: u16,
    log: InterceptLog,
    seed: SeedFork,
    counter: AtomicU64,
    root_cert: super::cert::Certificate,
}

impl MitmProxy {
    /// Creates a proxy with its own forging CA.
    ///
    /// * `net` — the network used for upstream dials.
    /// * `upstream_roots` — genuine roots for validating real services.
    pub fn new(
        net: Network,
        upstream_roots: TrustStore,
        upstream_port: u16,
        seed: SeedFork,
    ) -> MitmProxy {
        let ca = CertAuthority::new("iiscope Monitor CA", seed.fork("mitm-ca"));
        let root_cert = ca.root_cert();
        MitmProxy {
            provider: Arc::new(ForgingProvider {
                ca: Mutex::new(ca),
                seed: seed.fork("forge"),
            }),
            net,
            upstream_roots,
            upstream_port,
            log: InterceptLog::new(),
            seed: seed.fork("sessions"),
            counter: AtomicU64::new(0),
            root_cert,
        }
    }

    /// The CA certificate to install on monitored devices — the §4.1
    /// "self-signed certificate".
    pub fn root_cert(&self) -> super::cert::Certificate {
        self.root_cert.clone()
    }

    /// The decrypted-traffic log consumed by the parsers.
    pub fn intercepts(&self) -> InterceptLog {
        self.log.clone()
    }
}

impl SessionFactory for MitmProxy {
    fn open(&self, _peer: PeerInfo) -> Box<dyn Session> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let forwarder = Forwarder {
            net: self.net.clone(),
            upstream_roots: self.upstream_roots.clone(),
            upstream_port: self.upstream_port,
            log: self.log.clone(),
            sni: None,
            upstream: None,
            rng: self.seed.fork_idx("fwd-rng", n).rng(),
            dial_seq: 0,
        };
        Box::new(TlsServerSession::new(
            Arc::clone(&self.provider),
            Box::new(forwarder),
            self.seed.fork_idx("salt", n).seed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::session::FixedIdentity;
    use iiscope_netsim::{AsnId, AsnKind};
    use iiscope_types::Country;
    use std::net::Ipv4Addr;

    struct UpperPlain;
    impl PlainService for UpperPlain {
        fn on_data(&mut self, data: Bytes, _p: PeerInfo, _n: SimTime) -> Bytes {
            data.to_ascii_uppercase().into()
        }
    }

    struct Setup {
        net: Network,
        device: HostAddr,
        proxy_ip: Ipv4Addr,
        device_roots_with_mitm: TrustStore,
        genuine_roots: TrustStore,
        real_server_key: u64,
        proxy_log: InterceptLog,
    }

    fn setup() -> Setup {
        let seed = SeedFork::new(2024);
        let net = Network::new(seed.fork("net"));

        // Genuine PKI + a real upstream service at wall.fyber.iiscope.
        let mut public_ca = CertAuthority::new("iiscope Public CA", seed.fork("public-ca"));
        let identity = ServerIdentity::issue(&mut public_ca, "wall.fyber.iiscope", seed.fork("id"));
        let real_server_key = identity.keys.public;
        let mut genuine_roots = TrustStore::new();
        genuine_roots.install_root(public_ca.root_cert());

        let wall_ip = Ipv4Addr::new(10, 2, 0, 1);
        struct UpperFactory {
            provider: Arc<dyn IdentityProvider>,
            seed: SeedFork,
            n: AtomicU64,
        }
        impl SessionFactory for UpperFactory {
            fn open(&self, _peer: PeerInfo) -> Box<dyn Session> {
                let i = self.n.fetch_add(1, Ordering::Relaxed);
                Box::new(TlsServerSession::new(
                    Arc::clone(&self.provider),
                    Box::new(UpperPlain),
                    self.seed.fork_idx("s", i).seed(),
                ))
            }
        }
        net.bind(
            wall_ip,
            443,
            Arc::new(UpperFactory {
                provider: Arc::new(FixedIdentity(identity)),
                seed: seed.fork("wall-sessions"),
                n: AtomicU64::new(0),
            }),
        )
        .unwrap();
        net.register_host("wall.fyber.iiscope", wall_ip);

        // The MITM proxy.
        let proxy_ip = Ipv4Addr::new(10, 3, 0, 1);
        let proxy = MitmProxy::new(net.clone(), genuine_roots.clone(), 443, seed.fork("mitm"));
        let proxy_log = proxy.intercepts();
        let mitm_root = proxy.root_cert();
        net.bind(proxy_ip, 3128, Arc::new(proxy)).unwrap();

        // The monitored device trusts genuine roots AND the monitor CA.
        let mut device_roots_with_mitm = genuine_roots.clone();
        device_roots_with_mitm.install_root(mitm_root);

        let device = HostAddr {
            ip: Ipv4Addr::new(172, 20, 0, 2),
            asn: AsnId(7922),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        };
        Setup {
            net,
            device,
            proxy_ip,
            device_roots_with_mitm,
            genuine_roots,
            real_server_key,
            proxy_log,
        }
    }

    #[test]
    fn proxied_request_is_decrypted_and_forwarded() {
        let s = setup();
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut rng = SeedFork::new(1).rng();
        let mut tls = TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &s.device_roots_with_mitm,
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(tls.request(b"offers please").unwrap(), b"OFFERS PLEASE");

        let log = s.proxy_log.snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].dir, Direction::ToServer);
        assert_eq!(log[0].plaintext, b"offers please");
        assert_eq!(log[1].dir, Direction::ToClient);
        assert_eq!(log[1].plaintext, b"OFFERS PLEASE");
        assert_eq!(log[0].sni, "wall.fyber.iiscope");
    }

    #[test]
    fn device_without_mitm_root_refuses_proxy() {
        let s = setup();
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut rng = SeedFork::new(2).rng();
        // Device only trusts genuine roots → forged chain is rejected.
        let err = TlsClient::connect(conn, "wall.fyber.iiscope", &s.genuine_roots, None, &mut rng)
            .unwrap_err();
        assert_eq!(err.kind(), "denied");
        assert!(s.proxy_log.is_empty());
    }

    #[test]
    fn pinned_client_defeats_interception() {
        let s = setup();
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut rng = SeedFork::new(3).rng();
        // Even though the device trusts the monitor CA, the pin on the
        // genuine server key fails against the forged leaf.
        let err = TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &s.device_roots_with_mitm,
            Some(s.real_server_key),
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err.kind(), "denied");
        assert!(
            s.proxy_log.is_empty(),
            "no plaintext must leak on pin failure"
        );
    }

    #[test]
    fn responses_for_filters_by_sni_and_direction() {
        let s = setup();
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut rng = SeedFork::new(4).rng();
        let mut tls = TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &s.device_roots_with_mitm,
            None,
            &mut rng,
        )
        .unwrap();
        tls.request(b"a").unwrap();
        tls.request(b"b").unwrap();
        let responses = s.proxy_log.responses_for("wall.fyber.iiscope");
        assert_eq!(responses, vec![Bytes::from(b"A"), Bytes::from(b"B")]);
        assert!(s.proxy_log.responses_for("other.example").is_empty());
    }

    #[test]
    fn tap_scope_diverts_this_threads_traffic() {
        let s = setup();
        let mut rng = SeedFork::new(6).rng();
        let ((), tapped) = s.proxy_log.tap_scope(|| {
            let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
            let mut tls = TlsClient::connect(
                conn,
                "wall.fyber.iiscope",
                &s.device_roots_with_mitm,
                None,
                &mut rng,
            )
            .unwrap();
            assert_eq!(tls.request(b"tapped").unwrap(), b"TAPPED");
        });
        assert_eq!(tapped.len(), 2, "request + response captured");
        assert_eq!(tapped[0].plaintext, b"tapped");
        assert_eq!(tapped[1].plaintext, b"TAPPED");
        assert!(
            s.proxy_log.is_empty(),
            "tapped traffic must not reach the shared log"
        );

        // After the scope, traffic flows to the shared log again.
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut tls = TlsClient::connect(
            conn,
            "wall.fyber.iiscope",
            &s.device_roots_with_mitm,
            None,
            &mut rng,
        )
        .unwrap();
        tls.request(b"shared").unwrap();
        assert_eq!(s.proxy_log.len(), 2);
    }

    #[test]
    fn tap_scope_ignores_other_logs_and_other_threads() {
        let s = setup();
        let other = InterceptLog::new();
        let ((), tapped) = other.tap_scope(|| {
            // Pushes to a *different* log pass through untouched.
            s.proxy_log.push(Intercept {
                at: SimTime::EPOCH,
                sni: "x".into(),
                dir: Direction::ToServer,
                plaintext: vec![1].into(),
            });
            // A concurrent thread's pushes to the tapped log are not
            // captured by this thread's tap.
            let log = other.clone();
            std::thread::spawn(move || {
                log.push(Intercept {
                    at: SimTime::EPOCH,
                    sni: "y".into(),
                    dir: Direction::ToServer,
                    plaintext: vec![2].into(),
                });
            })
            .join()
            .unwrap();
        });
        assert!(tapped.is_empty());
        assert_eq!(s.proxy_log.len(), 1);
        assert_eq!(other.len(), 1, "other thread's push hit the shared log");
    }

    #[test]
    fn tap_scope_clears_on_unwind() {
        let log = InterceptLog::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            log.tap_scope(|| panic!("boom"));
        }));
        assert!(caught.is_err());
        // The tap is gone: a fresh push reaches the shared log.
        log.push(Intercept {
            at: SimTime::EPOCH,
            sni: "z".into(),
            dir: Direction::ToServer,
            plaintext: vec![3].into(),
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unknown_upstream_host_stalls_without_crashing() {
        let s = setup();
        let conn = s.net.connect(s.device, s.proxy_ip, 3128).unwrap();
        let mut rng = SeedFork::new(5).rng();
        let mut tls = TlsClient::connect(
            conn,
            "ghost.iiscope", // resolvable by forging CA, but no DNS entry upstream
            &s.device_roots_with_mitm,
            None,
            &mut rng,
        )
        .unwrap();
        // The proxy forges a cert happily, then fails the upstream dial
        // and returns nothing.
        assert_eq!(tls.request(b"hello").unwrap(), b"");
    }
}
