//! Certificates, authorities, chains, trust stores, pinning.
//!
//! The primitives are hash-based stand-ins (see the module warning in
//! [`crate::tls`]), but the *shapes* are real: a certificate binds a
//! subject name to a public key under an issuer's signature; clients
//! walk the chain to a trusted root; pinning compares the leaf key
//! against an expectation and overrides chain trust.

use crate::Json;
use iiscope_types::{Error, Result, SeedFork};

/// Mixes a 64-bit value (splitmix64 finalizer) — the "one-way function"
/// of the toy scheme.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A key pair. `public = mix(private)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPair {
    private: u64,
    /// The shareable half.
    pub public: u64,
}

impl KeyPair {
    /// Derives a key pair from a seed point.
    pub fn generate(seed: SeedFork) -> KeyPair {
        let private = mix(seed.seed() ^ 0x6b65_7970_6169_7221);
        KeyPair {
            private,
            public: mix(private),
        }
    }

    /// Signs a digest. Verification uses only the public key (which is
    /// what makes the scheme a toy — see module docs).
    pub fn sign(&self, digest: u64) -> u64 {
        mix(digest ^ self.public)
    }
}

/// Verifies `signature` over `digest` for the signer's `public` key.
pub fn verify(public: u64, digest: u64, signature: u64) -> bool {
    mix(digest ^ public) == signature
}

/// An X.509-shaped certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject hostname. A leading `*.` makes it a wildcard for one
    /// label, e.g. `*.fyber.iiscope`.
    pub subject: String,
    /// Issuer (CA) name.
    pub issuer: String,
    /// Subject's public key.
    pub public_key: u64,
    /// Serial number.
    pub serial: u64,
    /// Issuer's signature over the digest of the other fields.
    pub signature: u64,
}

impl Certificate {
    /// Digest over the signed fields.
    pub fn digest(subject: &str, issuer: &str, public_key: u64, serial: u64) -> u64 {
        let mut buf = Vec::with_capacity(subject.len() + issuer.len() + 16);
        buf.extend_from_slice(subject.as_bytes());
        buf.push(0);
        buf.extend_from_slice(issuer.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&public_key.to_be_bytes());
        buf.extend_from_slice(&serial.to_be_bytes());
        fnv64(&buf)
    }

    /// Whether this certificate's subject covers `hostname`.
    pub fn matches(&self, hostname: &str) -> bool {
        if let Some(suffix) = self.subject.strip_prefix("*.") {
            match hostname.split_once('.') {
                Some((label, rest)) => !label.is_empty() && rest == suffix,
                None => false,
            }
        } else {
            self.subject == hostname
        }
    }

    /// True if `issuer_public` validly signed this certificate.
    pub fn verify_with(&self, issuer_public: u64) -> bool {
        verify(
            issuer_public,
            Certificate::digest(&self.subject, &self.issuer, self.public_key, self.serial),
            self.signature,
        )
    }

    /// Serializes for the handshake wire (u64s as hex strings so JSON
    /// integers never overflow).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("subject", Json::str(&self.subject)),
            ("issuer", Json::str(&self.issuer)),
            ("public_key", Json::str(format!("{:016x}", self.public_key))),
            ("serial", Json::str(format!("{:016x}", self.serial))),
            ("signature", Json::str(format!("{:016x}", self.signature))),
        ])
    }

    /// Parses the handshake-wire form.
    pub fn from_json(v: &Json) -> Result<Certificate> {
        let field = |k: &str| -> Result<String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| Error::Decode(format!("certificate missing {k}")))
        };
        let hex = |k: &str| -> Result<u64> {
            u64::from_str_radix(&field(k)?, 16)
                .map_err(|_| Error::Decode(format!("certificate bad hex in {k}")))
        };
        Ok(Certificate {
            subject: field("subject")?,
            issuer: field("issuer")?,
            public_key: hex("public_key")?,
            serial: hex("serial")?,
            signature: hex("signature")?,
        })
    }
}

/// A certificate authority: a named key pair that issues certificates.
#[derive(Debug, Clone)]
pub struct CertAuthority {
    /// CA name (becomes the issuer of issued certs).
    pub name: String,
    keys: KeyPair,
    next_serial: u64,
}

impl CertAuthority {
    /// Creates a CA from a seed point.
    pub fn new(name: impl Into<String>, seed: SeedFork) -> CertAuthority {
        CertAuthority {
            name: name.into(),
            keys: KeyPair::generate(seed),
            next_serial: 1,
        }
    }

    /// The CA's public key (what trust stores pin).
    pub fn public(&self) -> u64 {
        self.keys.public
    }

    /// The CA's self-signed root certificate.
    pub fn root_cert(&self) -> Certificate {
        let digest = Certificate::digest(&self.name, &self.name, self.keys.public, 0);
        Certificate {
            subject: self.name.clone(),
            issuer: self.name.clone(),
            public_key: self.keys.public,
            serial: 0,
            signature: self.keys.sign(digest),
        }
    }

    /// Issues a leaf certificate binding `subject` to `subject_public`.
    pub fn issue(&mut self, subject: impl Into<String>, subject_public: u64) -> Certificate {
        let subject = subject.into();
        let serial = self.next_serial;
        self.next_serial += 1;
        let digest = Certificate::digest(&subject, &self.name, subject_public, serial);
        Certificate {
            subject,
            issuer: self.name.clone(),
            public_key: subject_public,
            serial,
            signature: self.keys.sign(digest),
        }
    }
}

/// A set of trusted root CAs, keyed by name.
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    roots: Vec<Certificate>,
}

impl TrustStore {
    /// Empty store (trusts nothing).
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Installs a root certificate — the §4.1 move ("installing a
    /// self-signed certificate on the Android phone").
    pub fn install_root(&mut self, root: Certificate) {
        self.roots.push(root);
    }

    /// Number of installed roots.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when no roots are installed.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Finds a trusted root by issuer name.
    pub fn root_named(&self, name: &str) -> Option<&Certificate> {
        self.roots.iter().find(|r| r.subject == name)
    }

    /// Validates a leaf-first chain for `hostname`.
    ///
    /// Checks, in order: non-empty chain; leaf subject matches the
    /// hostname; every link is signed by the next cert's key; the last
    /// cert's issuer is an installed root and the signature verifies
    /// against the *stored* root key (so a same-named impostor root
    /// fails). Returns the leaf public key for pinning checks and key
    /// agreement.
    pub fn verify_chain(&self, chain: &[Certificate], hostname: &str) -> Result<u64> {
        let leaf = chain
            .first()
            .ok_or_else(|| Error::Decode("empty certificate chain".into()))?;
        if !leaf.matches(hostname) {
            return Err(Error::Denied(format!(
                "certificate subject {:?} does not match {hostname:?}",
                leaf.subject
            )));
        }
        for pair in chain.windows(2) {
            let (child, parent) = (&pair[0], &pair[1]);
            if child.issuer != parent.subject || !child.verify_with(parent.public_key) {
                return Err(Error::Denied(format!(
                    "broken chain link {:?} -> {:?}",
                    child.subject, parent.subject
                )));
            }
        }
        let last = chain.last().expect("non-empty");
        let root = self
            .root_named(&last.issuer)
            .ok_or_else(|| Error::Denied(format!("untrusted issuer {:?}", last.issuer)))?;
        if !last.verify_with(root.public_key) {
            return Err(Error::Denied(format!(
                "signature by {:?} does not verify against installed root",
                last.issuer
            )));
        }
        Ok(leaf.public_key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ca(name: &str, salt: u64) -> CertAuthority {
        CertAuthority::new(name, SeedFork::new(salt).fork(name))
    }

    #[test]
    fn issue_and_verify_chain() {
        let mut root = ca("iiscope Root CA", 1);
        let server_keys = KeyPair::generate(SeedFork::new(2));
        let leaf = root.issue("wall.fyber.iiscope", server_keys.public);

        let mut store = TrustStore::new();
        store.install_root(root.root_cert());
        let key = store
            .verify_chain(std::slice::from_ref(&leaf), "wall.fyber.iiscope")
            .unwrap();
        assert_eq!(key, server_keys.public);
    }

    #[test]
    fn hostname_mismatch_rejected() {
        let mut root = ca("Root", 1);
        let leaf = root.issue("a.example", KeyPair::generate(SeedFork::new(2)).public);
        let mut store = TrustStore::new();
        store.install_root(root.root_cert());
        let err = store.verify_chain(&[leaf], "b.example").unwrap_err();
        assert_eq!(err.kind(), "denied");
    }

    #[test]
    fn wildcard_matching() {
        let mut root = ca("Root", 1);
        let leaf = root.issue("*.fyber.iiscope", 42);
        assert!(leaf.matches("wall.fyber.iiscope"));
        assert!(leaf.matches("api.fyber.iiscope"));
        assert!(!leaf.matches("fyber.iiscope"));
        assert!(!leaf.matches("a.b.fyber.iiscope"));
        assert!(!leaf.matches(".fyber.iiscope"));
    }

    #[test]
    fn untrusted_root_rejected() {
        let mut evil = ca("Evil CA", 66);
        let leaf = evil.issue("play.iiscope", 7);
        let store = TrustStore::new();
        assert!(store.verify_chain(&[leaf], "play.iiscope").is_err());
    }

    #[test]
    fn impostor_root_with_same_name_rejected() {
        let genuine = ca("Root", 1);
        let mut impostor = ca("Root", 999); // same name, different keys
        let leaf = impostor.issue("play.iiscope", 7);
        let mut store = TrustStore::new();
        store.install_root(genuine.root_cert());
        let err = store.verify_chain(&[leaf], "play.iiscope").unwrap_err();
        assert_eq!(err.kind(), "denied");
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let mut root = ca("Root", 1);
        let mut leaf = root.issue("play.iiscope", 7);
        leaf.public_key ^= 1; // swap in a different key
        let mut store = TrustStore::new();
        store.install_root(root.root_cert());
        assert!(store.verify_chain(&[leaf], "play.iiscope").is_err());
    }

    #[test]
    fn intermediate_chain_verifies() {
        let mut root = ca("Root", 1);
        let inter_keys = KeyPair::generate(SeedFork::new(5));
        // Build the intermediate's cert signed by the root.
        let inter_cert = root.issue("Intermediate CA", inter_keys.public);
        // Intermediate signs the leaf.
        let leaf_keys = KeyPair::generate(SeedFork::new(6));
        let digest = Certificate::digest("site.example", "Intermediate CA", leaf_keys.public, 77);
        let leaf = Certificate {
            subject: "site.example".into(),
            issuer: "Intermediate CA".into(),
            public_key: leaf_keys.public,
            serial: 77,
            signature: inter_keys.sign(digest),
        };
        let mut store = TrustStore::new();
        store.install_root(root.root_cert());
        let key = store
            .verify_chain(&[leaf, inter_cert], "site.example")
            .unwrap();
        assert_eq!(key, leaf_keys.public);
    }

    #[test]
    fn json_round_trip() {
        let mut root = ca("Root", 1);
        let leaf = root.issue("x.example", u64::MAX - 3); // exercise > i64::MAX
        let j = leaf.to_json();
        assert_eq!(Certificate::from_json(&j).unwrap(), leaf);
        assert!(Certificate::from_json(&Json::obj([("subject", Json::str("x"))])).is_err());
    }

    #[test]
    fn serials_increment() {
        let mut root = ca("Root", 1);
        let a = root.issue("a.example", 1);
        let b = root.issue("b.example", 1);
        assert_ne!(a.serial, b.serial);
    }

    #[test]
    fn empty_chain_rejected() {
        let store = TrustStore::new();
        assert!(store.verify_chain(&[], "x").is_err());
    }
}
