//! The record layer: typed, length-delimited, encrypted and
//! authenticated records.
//!
//! Wire format per record:
//!
//! ```text
//! +------+--------+----------------------+------------+
//! | type | len u16|  ciphertext (len-8)  |  mac (8B)  |
//! +------+--------+----------------------+------------+
//! ```
//!
//! * Handshake records are encrypted under the null key (i.e. readable
//!   on the wire, like a classic TLS ClientHello) but still MACed so
//!   fault-injected corruption is detected during the handshake too.
//! * Application records are encrypted under the session key with a
//!   per-direction, per-record sequence number; replayed or reordered
//!   records fail their MAC.
//! * Large payloads are split across records of at most
//!   [`MAX_RECORD_PLAINTEXT`] bytes, like real TLS fragmentation.
//!
//! Buffer discipline: sealing encrypts in place inside the output
//! buffer (one write per plaintext byte), and the decoder makes exactly
//! one copy per record — ciphertext into the buffer that decryption
//! mutates and that is then frozen into the record's shared plaintext
//! slab. Consumed wire bytes are dropped by advancing an offset, not by
//! a `drain` memmove.

use super::cert::{fnv64, mix};
use bytes::{BufMut, Bytes, BytesMut};
use iiscope_types::{wirestats, Error, Result};

/// Maximum plaintext bytes carried by one record.
pub const MAX_RECORD_PLAINTEXT: usize = 16 * 1024 - 64;

/// Record content types (numbers match TLS for familiarity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordType {
    /// Fatal alerts.
    Alert,
    /// Handshake messages.
    Handshake,
    /// Application data.
    AppData,
}

impl RecordType {
    fn to_byte(self) -> u8 {
        match self {
            RecordType::Alert => 21,
            RecordType::Handshake => 22,
            RecordType::AppData => 23,
        }
    }

    fn from_byte(b: u8) -> Result<RecordType> {
        match b {
            21 => Ok(RecordType::Alert),
            22 => Ok(RecordType::Handshake),
            23 => Ok(RecordType::AppData),
            // A mangled type byte is wire damage: connection-fatal and
            // retryable over a fresh connection.
            other => Err(Error::Network(format!("unknown record type {other}"))),
        }
    }
}

/// xorshift64* keystream.
fn keystream_xor(key: u64, seq: u64, data: &mut [u8]) {
    // The null key leaves handshake records readable on the wire.
    if key == 0 {
        return;
    }
    let mut state = mix(key ^ mix(seq)) | 1;
    for chunk in data.chunks_mut(8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ks = state.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

fn mac(key: u64, seq: u64, rtype: RecordType, plaintext: &[u8]) -> u64 {
    fnv64(plaintext) ^ mix(key ^ seq.wrapping_mul(0x9E37) ^ u64::from(rtype.to_byte()))
}

/// Seals `plaintext` into one or more records appended to `out`,
/// advancing `*seq` once per record. Encryption happens in place in
/// `out`: the plaintext chunk is written once and XORed where it lies.
pub fn seal_records_into(
    out: &mut BytesMut,
    key: u64,
    seq: &mut u64,
    rtype: RecordType,
    plaintext: &[u8],
) {
    out.reserve(plaintext.len() + 16);
    let chunks: Vec<&[u8]> = if plaintext.is_empty() {
        vec![&[][..]]
    } else {
        plaintext.chunks(MAX_RECORD_PLAINTEXT).collect()
    };
    for chunk in chunks {
        let record_mac = mac(key, *seq, rtype, chunk);
        out.put_u8(rtype.to_byte());
        out.put_u16((chunk.len() + 8) as u16);
        let body_start = out.len();
        out.put_slice(chunk);
        keystream_xor(key, *seq, &mut out[body_start..]);
        out.put_u64(record_mac);
        *seq += 1;
        wirestats::add_records_sealed(1);
    }
    wirestats::add_bytes_sealed(plaintext.len() as u64);
}

/// Seals `plaintext` into one or more records, advancing `*seq` once
/// per record.
pub fn seal_records(key: u64, seq: &mut u64, rtype: RecordType, plaintext: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(plaintext.len() + 32);
    seal_records_into(&mut out, key, seq, rtype, plaintext);
    out.freeze()
}

/// A decoded record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub rtype: RecordType,
    /// Decrypted, authenticated plaintext — a shared slab that
    /// downstream taps (intercept log, HTTP parser) alias rather than
    /// copy.
    pub plaintext: Bytes,
}

/// Incremental record decoder for one direction of a connection.
#[derive(Debug, Default)]
pub struct RecordDecoder {
    buf: BytesMut,
}

impl RecordDecoder {
    /// Creates an empty decoder.
    pub fn new() -> RecordDecoder {
        RecordDecoder::default()
    }

    /// Appends raw wire bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes and authenticates the next record, if complete.
    /// Advances `*seq` on success. A MAC failure is fatal for the
    /// connection (as in TLS).
    pub fn next_record(&mut self, key: u64, seq: &mut u64) -> Result<Option<Record>> {
        use bytes::Buf;
        if self.buf.len() < 3 {
            return Ok(None);
        }
        let rtype = RecordType::from_byte(self.buf[0])?;
        let len = u16::from_be_bytes([self.buf[1], self.buf[2]]) as usize;
        if len < 8 {
            return Err(Error::Network("record shorter than its MAC".into()));
        }
        if self.buf.len() < 3 + len {
            return Ok(None);
        }
        let wire_mac =
            u64::from_be_bytes(self.buf[3 + len - 8..3 + len].try_into().expect("8 bytes"));
        self.buf.advance(3);
        // The one copy of the decode path: ciphertext moves into the
        // buffer that decryption mutates and the record then owns.
        let mut body = self.buf.split_to(len - 8);
        self.buf.advance(8);
        keystream_xor(key, *seq, &mut body);
        if mac(key, *seq, rtype, &body) != wire_mac {
            return Err(Error::Network("bad record MAC".into()));
        }
        *seq += 1;
        wirestats::add_records_opened(1);
        Ok(Some(Record {
            rtype,
            plaintext: body.freeze(),
        }))
    }

    /// Drains all currently-complete records.
    pub fn drain(&mut self, key: u64, seq: &mut u64) -> Result<Vec<Record>> {
        let mut records = Vec::new();
        while let Some(r) = self.next_record(key, seq)? {
            records.push(r);
        }
        Ok(records)
    }

    /// Buffered byte count.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// One-shot helper: decodes a complete byte run into records,
/// concatenating app-data plaintext. Errors on alerts. A single-record
/// run — every offer-wall-sized exchange — returns the decrypt buffer
/// itself, uncopied.
pub fn open_records(key: u64, seq: &mut u64, bytes: &[u8]) -> Result<Bytes> {
    // Decoded in place over `bytes` rather than through a
    // `RecordDecoder`: the input is already complete, so the wire run
    // never needs to be staged in a stream buffer — each record costs
    // exactly one copy (ciphertext into the buffer decryption mutates).
    let mut parts: Vec<Bytes> = Vec::new();
    let mut pos = 0;
    while bytes.len() - pos >= 3 {
        let rtype = RecordType::from_byte(bytes[pos])?;
        let len = u16::from_be_bytes([bytes[pos + 1], bytes[pos + 2]]) as usize;
        if len < 8 {
            return Err(Error::Network("record shorter than its MAC".into()));
        }
        if bytes.len() - pos < 3 + len {
            break; // trailing partial record
        }
        let wire_mac = u64::from_be_bytes(
            bytes[pos + 3 + len - 8..pos + 3 + len]
                .try_into()
                .expect("8 bytes"),
        );
        let mut body = bytes[pos + 3..pos + 3 + len - 8].to_vec();
        pos += 3 + len;
        keystream_xor(key, *seq, &mut body);
        if mac(key, *seq, rtype, &body) != wire_mac {
            return Err(Error::Network("bad record MAC".into()));
        }
        *seq += 1;
        wirestats::add_records_opened(1);
        match rtype {
            RecordType::AppData => parts.push(Bytes::from(body)),
            RecordType::Alert => {
                return Err(Error::Network(format!(
                    "tls alert: {}",
                    String::from_utf8_lossy(&body)
                )))
            }
            RecordType::Handshake => {
                return Err(Error::Network("unexpected handshake record".into()))
            }
        }
    }
    if pos != bytes.len() {
        return Err(Error::Network("trailing partial record".into()));
    }
    Ok(match parts.len() {
        0 => Bytes::new(),
        1 => {
            wirestats::add_record_passthrough(1);
            parts.pop().expect("one part")
        }
        _ => {
            let mut joined = Vec::with_capacity(parts.iter().map(Bytes::len).sum());
            for p in &parts {
                joined.extend_from_slice(p);
            }
            Bytes::from(joined)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trip() {
        let key = 0xDEAD_BEEF_CAFE_F00D;
        let mut send_seq = 0;
        let wire = seal_records(key, &mut send_seq, RecordType::AppData, b"hello world");
        let mut recv_seq = 0;
        assert_eq!(
            open_records(key, &mut recv_seq, &wire).unwrap(),
            b"hello world"
        );
        assert_eq!(send_seq, recv_seq);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut seq = 0;
        let wire = seal_records(42, &mut seq, RecordType::AppData, b"secret offers");
        let hay = wire.windows(6).any(|w| w == b"secret");
        assert!(!hay, "plaintext leaked into ciphertext");
    }

    #[test]
    fn null_key_is_readable_but_authenticated() {
        let mut seq = 0;
        let wire = seal_records(0, &mut seq, RecordType::Handshake, b"client_hello");
        assert!(wire.windows(12).any(|w| w == b"client_hello"));
        // … but still MACed:
        let mut tampered = wire.to_vec();
        let n = tampered.len();
        tampered[n - 9] ^= 0xFF; // flip a plaintext byte, keep MAC bytes
        let mut dec = RecordDecoder::new();
        dec.extend(&tampered);
        let mut s = 0;
        assert!(dec.next_record(0, &mut s).is_err());
    }

    #[test]
    fn corruption_detected() {
        let key = 7;
        let mut seq = 0;
        let mut wire = seal_records(key, &mut seq, RecordType::AppData, b"payload").to_vec();
        wire[5] ^= 0x10;
        let mut recv_seq = 0;
        let err = open_records(key, &mut recv_seq, &wire).unwrap_err();
        assert_eq!(err.kind(), "network", "wire damage is a transport error");
    }

    #[test]
    fn wrong_key_fails_mac() {
        let mut seq = 0;
        let wire = seal_records(1, &mut seq, RecordType::AppData, b"x");
        let mut recv_seq = 0;
        assert!(open_records(2, &mut recv_seq, &wire).is_err());
    }

    #[test]
    fn replay_fails_sequence_check() {
        let key = 9;
        let mut seq = 0;
        let r1 = seal_records(key, &mut seq, RecordType::AppData, b"first");
        let mut replayed = r1.to_vec();
        replayed.extend_from_slice(&r1);
        let mut recv_seq = 0;
        // First copy opens fine, replayed copy fails under seq=1.
        let mut dec = RecordDecoder::new();
        dec.extend(&replayed);
        assert!(dec.next_record(key, &mut recv_seq).unwrap().is_some());
        assert!(dec.next_record(key, &mut recv_seq).is_err());
    }

    #[test]
    fn fragmentation_and_reassembly() {
        let key = 11;
        let big = vec![0x5Au8; MAX_RECORD_PLAINTEXT * 2 + 100];
        let mut seq = 0;
        let wire = seal_records(key, &mut seq, RecordType::AppData, &big);
        assert_eq!(seq, 3, "expected 3 records");
        let mut recv_seq = 0;
        assert_eq!(open_records(key, &mut recv_seq, &wire).unwrap(), big);
    }

    #[test]
    fn empty_payload_still_one_record() {
        let key = 13;
        let mut seq = 0;
        let wire = seal_records(key, &mut seq, RecordType::AppData, b"");
        assert_eq!(seq, 1);
        let mut recv_seq = 0;
        assert_eq!(open_records(key, &mut recv_seq, &wire).unwrap(), b"");
    }

    #[test]
    fn alert_surfaces_as_network_error() {
        let mut seq = 0;
        let wire = seal_records(0, &mut seq, RecordType::Alert, b"handshake_failure");
        let mut recv_seq = 0;
        let err = open_records(0, &mut recv_seq, &wire).unwrap_err();
        assert_eq!(err.kind(), "network");
        assert!(err.to_string().contains("handshake_failure"));
    }

    #[test]
    fn partial_record_waits() {
        let key = 3;
        let mut seq = 0;
        let wire = seal_records(key, &mut seq, RecordType::AppData, b"abc");
        let mut dec = RecordDecoder::new();
        dec.extend(&wire[..wire.len() - 1]);
        let mut recv_seq = 0;
        assert!(dec.next_record(key, &mut recv_seq).unwrap().is_none());
        dec.extend(&wire[wire.len() - 1..]);
        assert!(dec.next_record(key, &mut recv_seq).unwrap().is_some());
    }

    #[test]
    fn unknown_record_type_rejected() {
        let mut dec = RecordDecoder::new();
        dec.extend(&[99, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0]);
        let mut seq = 0;
        assert!(dec.next_record(0, &mut seq).is_err());
    }

    #[test]
    fn seal_into_appends_to_existing_buffer() {
        let mut out = BytesMut::new();
        out.extend_from_slice(b"prior");
        let mut seq = 0;
        seal_records_into(&mut out, 5, &mut seq, RecordType::AppData, b"payload");
        assert_eq!(&out[..5], b"prior");
        let mut recv_seq = 0;
        assert_eq!(
            open_records(5, &mut recv_seq, &out[5..]).unwrap(),
            b"payload"
        );
    }
}
