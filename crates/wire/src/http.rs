//! An HTTP/1.1 subset: framing, headers, handler trait.
//!
//! Every service in the world — Play Store frontend, offer walls,
//! attribution postbacks, the honey-app collector — speaks this
//! protocol, and the monitoring proxy parses it out of intercepted
//! plaintext ("we parse the HTTP responses that are intercepted by the
//! mitmproxy", §4.1). The subset is deliberately strict:
//!
//! * request line + headers + `Content-Length`-delimited body
//!   (no chunked transfer, no HTTP/2);
//! * CRLF line endings, case-insensitive header names;
//! * incremental parsing (a message split across deliveries
//!   reassembles), with hard caps on header and body sizes.

use iiscope_netsim::PeerInfo;
use iiscope_types::{Error, Result, SimTime};
use std::fmt;

/// Maximum accepted header block (16 KiB).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body (8 MiB) — an APK download is the largest
/// object in the study.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Request methods used by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl Method {
    fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    fn parse(s: &str) -> Result<Method> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            other => Err(Error::Decode(format!("unsupported method {other:?}"))),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// Empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, like real HTTP).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.push((name.into(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Replaces every occurrence of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.insert(name, value.into());
    }

    /// Iterates over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Builds a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// Builds a POST with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Vec<u8>>) -> Request {
        Request {
            method: Method::Post,
            target: target.into(),
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// The path component (target up to `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// Decoded query parameters, in order of appearance.
    pub fn query(&self) -> Vec<(String, String)> {
        let raw = match self.target.split_once('?') {
            Some((_, q)) => q,
            None => return Vec::new(),
        };
        raw.split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| match kv.split_once('=') {
                Some((k, v)) => (pct_decode(k), pct_decode(v)),
                None => (pct_decode(kv), String::new()),
            })
            .collect()
    }

    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query()
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Serializes to wire bytes (sets `Content-Length`).
    pub fn encode(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        headers.set("Content-Length", self.body.len().to_string());
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        for (n, v) in headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Attempts to parse one request from the front of `buf`.
    ///
    /// Returns `Ok(None)` if incomplete, `Ok(Some((req, consumed)))` on
    /// success, and `Err` on malformed or oversized input.
    pub fn parse(buf: &[u8]) -> Result<Option<(Request, usize)>> {
        let Some((head, body_start)) = split_head(buf)? else {
            return Ok(None);
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| Error::Decode("missing request target".into()))?
            .to_string();
        if parts.next() != Some("HTTP/1.1") {
            return Err(Error::Decode("bad HTTP version".into()));
        }
        let headers = parse_headers(lines)?;
        match read_body(buf, body_start, &headers)? {
            Some((body, consumed)) => Ok(Some((
                Request {
                    method,
                    target,
                    headers,
                    body,
                },
                consumed,
            ))),
            None => Ok(None),
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A bare response with the given status.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// 200 with a JSON body and content type.
    pub fn ok_json(value: &crate::Json) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", "application/json");
        r.body = value.to_string().into_bytes();
        r
    }

    /// 200 with a plain-text body.
    pub fn ok_text(text: impl Into<String>) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", "text/plain");
        r.body = text.into().into_bytes();
        r
    }

    /// 200 with opaque bytes (APK downloads).
    pub fn ok_bytes(bytes: Vec<u8>, content_type: &str) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", content_type);
        r.body = bytes;
        r
    }

    /// 404.
    pub fn not_found() -> Response {
        Response::status(404)
    }

    /// Canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            204 => "No Content",
            302 => "Found",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// True for 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Body parsed as JSON.
    pub fn body_json(&self) -> Result<crate::Json> {
        let text = std::str::from_utf8(&self.body)
            .map_err(|_| Error::Decode("body is not utf-8".into()))?;
        Ok(crate::Json::parse(text)?)
    }

    /// Serializes to wire bytes (sets `Content-Length`).
    pub fn encode(&self) -> Vec<u8> {
        let mut headers = self.headers.clone();
        headers.set("Content-Length", self.body.len().to_string());
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason()).into_bytes();
        for (n, v) in headers.iter() {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Attempts to parse one response from the front of `buf`
    /// (same contract as [`Request::parse`]).
    pub fn parse(buf: &[u8]) -> Result<Option<(Response, usize)>> {
        let Some((head, body_start)) = split_head(buf)? else {
            return Ok(None);
        };
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let mut parts = status_line.splitn(3, ' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(Error::Decode("bad HTTP version".into()));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::Decode("bad status code".into()))?;
        let headers = parse_headers(lines)?;
        match read_body(buf, body_start, &headers)? {
            Some((body, consumed)) => Ok(Some((
                Response {
                    status,
                    headers,
                    body,
                },
                consumed,
            ))),
            None => Ok(None),
        }
    }
}

/// Finds the end of the header block. Returns the head as UTF-8 text
/// plus the byte offset where the body starts.
fn split_head(buf: &[u8]) -> Result<Option<(&str, usize)>> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n");
    match end {
        None if buf.len() > MAX_HEADER_BYTES => Err(Error::Decode("header block too large".into())),
        None => Ok(None),
        Some(pos) if pos > MAX_HEADER_BYTES => Err(Error::Decode("header block too large".into())),
        Some(pos) => {
            let head = std::str::from_utf8(&buf[..pos])
                .map_err(|_| Error::Decode("headers are not utf-8".into()))?;
            Ok(Some((head, pos + 4)))
        }
    }
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers> {
    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Error::Decode(format!("malformed header line {line:?}")))?;
        headers.insert(name.trim().to_string(), value.trim().to_string());
    }
    Ok(headers)
}

fn read_body(buf: &[u8], body_start: usize, headers: &Headers) -> Result<Option<(Vec<u8>, usize)>> {
    let len: usize = match headers.get("Content-Length") {
        Some(v) => v
            .parse()
            .map_err(|_| Error::Decode(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(Error::Decode("body too large".into()));
    }
    if buf.len() < body_start + len {
        return Ok(None);
    }
    Ok(Some((
        buf[body_start..body_start + len].to_vec(),
        body_start + len,
    )))
}

fn pct_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Context passed to request handlers.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The connecting client.
    pub peer: PeerInfo,
    /// Time of the request.
    pub now: SimTime,
}

/// A request handler — what each simulated service implements.
pub trait Handler: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request, &RequestCtx) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        self(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Json;

    #[test]
    fn request_round_trip() {
        let mut req = Request::post("/v1/telemetry?device=7", b"{\"ok\":true}".to_vec());
        req.headers.insert("Host", "collector.iiscope.net");
        let wire = req.encode();
        let (parsed, consumed) = Request::parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path(), "/v1/telemetry");
        assert_eq!(parsed.query_param("device").as_deref(), Some("7"));
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.headers.get("host"), Some("collector.iiscope.net"));
    }

    #[test]
    fn response_round_trip_json() {
        let body = Json::obj([("offers", Json::arr([Json::Int(1)]))]);
        let resp = Response::ok_json(&body);
        let wire = resp.encode();
        let (parsed, consumed) = Response::parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert!(parsed.is_success());
        assert_eq!(parsed.body_json().unwrap(), body);
        assert_eq!(parsed.headers.get("content-type"), Some("application/json"));
    }

    #[test]
    fn incremental_parse_waits_for_body() {
        let req = Request::post("/x", vec![b'a'; 10]);
        let wire = req.encode();
        assert!(Request::parse(&wire[..wire.len() - 1]).unwrap().is_none());
        assert!(Request::parse(&wire[..10]).unwrap().is_none());
        assert!(Request::parse(&wire).unwrap().is_some());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let a = Request::get("/a").encode();
        let b = Request::get("/b").encode();
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let (first, consumed) = Request::parse(&both).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(consumed, a.len());
        let (second, _) = Request::parse(&both[consumed..]).unwrap().unwrap();
        assert_eq!(second.target, "/b");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(Request::parse(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
        assert!(Request::parse(b"GET /x HTTP/2\r\n\r\n").is_err());
        assert!(Request::parse(b"GET  HTTP/1.1\r\n\r\n").is_err());
        assert!(Response::parse(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(Request::parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        let huge = format!(
            "GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(Request::parse(huge.as_bytes()).is_err());
    }

    #[test]
    fn oversized_headers_rejected_even_incomplete() {
        let big = vec![b'a'; MAX_HEADER_BYTES + 10];
        assert!(Request::parse(&big).is_err());
    }

    #[test]
    fn query_decoding() {
        let req = Request::get("/wall?country=US&desc=Install+%26+Register&flag");
        let q = req.query();
        assert_eq!(q[0], ("country".into(), "US".into()));
        assert_eq!(q[1], ("desc".into(), "Install & Register".into()));
        assert_eq!(q[2], ("flag".into(), String::new()));
        assert_eq!(Request::get("/plain").query(), Vec::new());
    }

    #[test]
    fn headers_case_insensitive_set_get() {
        let mut h = Headers::new();
        h.insert("X-Token", "a");
        h.insert("x-token", "b");
        assert_eq!(h.get("X-TOKEN"), Some("a"));
        h.set("X-Token", "c");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-token"), Some("c"));
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(Response::status(200).reason(), "OK");
        assert_eq!(Response::status(429).reason(), "Too Many Requests");
        assert_eq!(Response::status(999).reason(), "Unknown");
        assert!(!Response::not_found().is_success());
    }
}
