//! An HTTP/1.1 subset: framing, headers, handler trait.
//!
//! Every service in the world — Play Store frontend, offer walls,
//! attribution postbacks, the honey-app collector — speaks this
//! protocol, and the monitoring proxy parses it out of intercepted
//! plaintext ("we parse the HTTP responses that are intercepted by the
//! mitmproxy", §4.1). The subset is deliberately strict:
//!
//! * request line + headers + `Content-Length`-delimited body
//!   (no chunked transfer, no HTTP/2);
//! * CRLF line endings, case-insensitive header names;
//! * incremental parsing (a message split across deliveries
//!   reassembles), with hard caps on header and body sizes.
//!
//! Two parsing tiers share one grammar:
//!
//! * [`Request::parse`]/[`Response::parse`] build owned messages;
//!   [`Request::parse_bytes`]/[`Response::parse_bytes`] do the same but
//!   keep the body as a slice of the caller's shared delivery slab.
//! * [`RequestView`]/[`ResponseView`] borrow *everything* — header
//!   names, values and body are slices into the input buffer, with no
//!   `String` per header — which is what the monitor's intercept
//!   parsers use on the per-crawl-day hot path.

use bytes::{BufMut, Bytes, BytesMut};
use iiscope_netsim::PeerInfo;
use iiscope_types::{wirestats, Error, Result, SimTime};
use std::fmt;

/// Maximum accepted header block (16 KiB).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Maximum accepted body (8 MiB) — an APK download is the largest
/// object in the study.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Request methods used by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

impl Method {
    fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
        }
    }

    fn parse(s: &str) -> Result<Method> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            other => Err(Error::Decode(format!("unsupported method {other:?}"))),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// Empty header set.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, like real HTTP).
    pub fn insert(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.0.push((name.into(), value.into()));
    }

    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Replaces every occurrence of `name` with a single value.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.0.retain(|(n, _)| !n.eq_ignore_ascii_case(name));
        self.insert(name, value.into());
    }

    /// Iterates over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Request target as sent (path plus optional `?query`).
    pub target: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes — a shared slab; parsed requests keep a slice of the
    /// delivery buffer rather than a copy.
    pub body: Bytes,
}

impl Request {
    /// Builds a GET request for `target`.
    pub fn get(target: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            target: target.into(),
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Builds a POST with a body.
    pub fn post(target: impl Into<String>, body: impl Into<Bytes>) -> Request {
        Request {
            method: Method::Post,
            target: target.into(),
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// The path component (target up to `?`).
    pub fn path(&self) -> &str {
        path_of(&self.target)
    }

    /// Decoded query parameters, in order of appearance.
    pub fn query(&self) -> Vec<(String, String)> {
        query_of(&self.target)
    }

    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<String> {
        query_param_of(&self.target, key)
    }

    /// Serializes onto the end of `out` (sets `Content-Length`).
    pub fn encode_into(&self, out: &mut BytesMut) {
        out.reserve(64 + self.body.len());
        out.put_slice(self.method.as_str().as_bytes());
        out.put_u8(b' ');
        out.put_slice(self.target.as_bytes());
        out.put_slice(b" HTTP/1.1\r\n");
        encode_headers(out, &self.headers, self.body.len());
        out.put_slice(&self.body);
    }

    /// Serializes to wire bytes (sets `Content-Length`).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64 + self.body.len());
        self.encode_into(&mut out);
        out.freeze()
    }

    /// Attempts to parse one request from the front of `buf`.
    ///
    /// Returns `Ok(None)` if incomplete, `Ok(Some((req, consumed)))` on
    /// success, and `Err` on malformed or oversized input. The body is
    /// copied out of `buf`; prefer [`Request::parse_bytes`] when the
    /// input is already a shared slab.
    pub fn parse(buf: &[u8]) -> Result<Option<(Request, usize)>> {
        match parse_request_view(buf)? {
            Some((view, consumed)) => Ok(Some((view.to_owned(Bytes::copy_from_slice), consumed))),
            None => Ok(None),
        }
    }

    /// Like [`Request::parse`], but the parsed body is a zero-copy
    /// slice of `buf`'s allocation.
    pub fn parse_bytes(buf: &Bytes) -> Result<Option<(Request, usize)>> {
        match parse_request_view(buf)? {
            Some((view, consumed)) => {
                let body = buf.slice(consumed - view.body.len()..consumed);
                Ok(Some((view.to_owned(move |_| body), consumed)))
            }
            None => Ok(None),
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers.
    pub headers: Headers,
    /// Body bytes — a shared slab; parsed responses keep a slice of the
    /// delivery buffer rather than a copy.
    pub body: Bytes,
}

impl Response {
    /// A bare response with the given status.
    pub fn status(status: u16) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// 200 with a JSON body and content type.
    pub fn ok_json(value: &crate::Json) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", "application/json");
        r.body = value.to_bytes();
        r
    }

    /// 200 with a plain-text body.
    pub fn ok_text(text: impl Into<String>) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", "text/plain");
        r.body = text.into().into();
        r
    }

    /// 200 with opaque bytes (APK downloads).
    pub fn ok_bytes(bytes: impl Into<Bytes>, content_type: &str) -> Response {
        let mut r = Response::status(200);
        r.headers.set("Content-Type", content_type);
        r.body = bytes.into();
        r
    }

    /// 404.
    pub fn not_found() -> Response {
        Response::status(404)
    }

    /// Canonical reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        reason_of(self.status)
    }

    /// True for 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Body interpreted as UTF-8 (lossy). Allocates; the parse paths
    /// that only need to *read* text should use [`Response::body_str`].
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Body as borrowed UTF-8 — no copy.
    pub fn body_str(&self) -> Result<&str> {
        std::str::from_utf8(&self.body).map_err(|_| Error::Decode("body is not utf-8".into()))
    }

    /// Body parsed as JSON.
    pub fn body_json(&self) -> Result<crate::Json> {
        Ok(crate::Json::parse(self.body_str()?)?)
    }

    /// Serializes onto the end of `out` (sets `Content-Length`).
    pub fn encode_into(&self, out: &mut BytesMut) {
        // Header-only responses on the serve hot path (404s, the
        // 400/408/413/431 reject statuses) have a fixed wire image —
        // one pre-encoded slice instead of line-by-line assembly.
        if self.headers.is_empty() && self.body.is_empty() {
            if let Some(wire) = preencoded_empty(self.status) {
                out.put_slice(wire);
                return;
            }
        }
        out.reserve(64 + self.body.len());
        if let Some(line) = preencoded_status_line(self.status) {
            out.put_slice(line);
        } else if (100..1000).contains(&self.status) {
            out.put_slice(b"HTTP/1.1 ");
            let status_buf = [
                b'0' + (self.status / 100) as u8,
                b'0' + (self.status / 10 % 10) as u8,
                b'0' + (self.status % 10) as u8,
            ];
            out.put_slice(&status_buf);
            out.put_u8(b' ');
            out.put_slice(self.reason().as_bytes());
            out.put_slice(b"\r\n");
        } else {
            // Out-of-range codes never occur in the world but keep the
            // encoder total.
            return self.encode_into_slow(out);
        }
        encode_headers(out, &self.headers, self.body.len());
        out.put_slice(&self.body);
    }

    fn encode_into_slow(&self, out: &mut BytesMut) {
        out.put_slice(format!("{} {}\r\n", self.status, self.reason()).as_bytes());
        encode_headers(out, &self.headers, self.body.len());
        out.put_slice(&self.body);
    }

    /// Serializes to wire bytes (sets `Content-Length`).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64 + self.body.len());
        self.encode_into(&mut out);
        out.freeze()
    }

    /// Attempts to parse one response from the front of `buf`
    /// (same contract as [`Request::parse`]).
    pub fn parse(buf: &[u8]) -> Result<Option<(Response, usize)>> {
        match parse_response_view(buf)? {
            Some((view, consumed)) => Ok(Some((view.to_owned(Bytes::copy_from_slice), consumed))),
            None => Ok(None),
        }
    }

    /// Like [`Response::parse`], but the parsed body is a zero-copy
    /// slice of `buf`'s allocation.
    pub fn parse_bytes(buf: &Bytes) -> Result<Option<(Response, usize)>> {
        match parse_response_view(buf)? {
            Some((view, consumed)) => {
                let body = buf.slice(consumed - view.body.len()..consumed);
                Ok(Some((view.to_owned(move |_| body), consumed)))
            }
            None => Ok(None),
        }
    }
}

// ---------------------------------------------------------------------
// Borrowed views — the monitor's intercept-parsing fast path.
// ---------------------------------------------------------------------

/// Borrowed header list: names and values are slices into the input
/// buffer; the only allocation is the backing `Vec` of pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderView<'a>(Vec<(&'a str, &'a str)>);

impl<'a> HeaderView<'a> {
    /// First value for `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|&(_, v)| v)
    }

    /// Iterates over all `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, &'a str)> + '_ {
        self.0.iter().copied()
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no headers are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn to_headers(&self) -> Headers {
        let mut h = Headers::new();
        for (n, v) in self.iter() {
            h.insert(n, v);
        }
        h
    }
}

/// A fully-borrowed parsed request: target, headers and body are
/// slices into the delivery buffer.
#[derive(Debug, Clone)]
pub struct RequestView<'a> {
    /// Method.
    pub method: Method,
    /// Request target as sent.
    pub target: &'a str,
    /// Borrowed headers.
    pub headers: HeaderView<'a>,
    /// Borrowed body.
    pub body: &'a [u8],
}

impl<'a> RequestView<'a> {
    /// Parses one request from the front of `buf` without copying any
    /// of it (same completeness contract as [`Request::parse`]).
    pub fn parse(buf: &'a [u8]) -> Result<Option<(RequestView<'a>, usize)>> {
        let parsed = parse_request_view(buf)?;
        if parsed.is_some() {
            wirestats::add_http_view_parses(1);
        }
        Ok(parsed)
    }

    /// The path component (target up to `?`).
    pub fn path(&self) -> &'a str {
        path_of(self.target)
    }

    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<String> {
        query_param_of(self.target, key)
    }

    fn to_owned(&self, make_body: impl FnOnce(&[u8]) -> Bytes) -> Request {
        Request {
            method: self.method,
            target: self.target.to_string(),
            headers: self.headers.to_headers(),
            body: make_body(self.body),
        }
    }
}

/// A fully-borrowed parsed response.
#[derive(Debug, Clone)]
pub struct ResponseView<'a> {
    /// Status code.
    pub status: u16,
    /// Borrowed headers.
    pub headers: HeaderView<'a>,
    /// Borrowed body.
    pub body: &'a [u8],
}

impl<'a> ResponseView<'a> {
    /// Parses one response from the front of `buf` without copying any
    /// of it (same completeness contract as [`Response::parse`]).
    pub fn parse(buf: &'a [u8]) -> Result<Option<(ResponseView<'a>, usize)>> {
        let parsed = parse_response_view(buf)?;
        if parsed.is_some() {
            wirestats::add_http_view_parses(1);
        }
        Ok(parsed)
    }

    /// True for 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Body as borrowed UTF-8 — no copy.
    pub fn body_str(&self) -> Result<&'a str> {
        std::str::from_utf8(self.body).map_err(|_| Error::Decode("body is not utf-8".into()))
    }

    fn to_owned(&self, make_body: impl FnOnce(&[u8]) -> Bytes) -> Response {
        Response {
            status: self.status,
            headers: self.headers.to_headers(),
            body: make_body(self.body),
        }
    }
}

// ---------------------------------------------------------------------
// Shared grammar.
// ---------------------------------------------------------------------

fn path_of(target: &str) -> &str {
    match target.split_once('?') {
        Some((p, _)) => p,
        None => target,
    }
}

fn query_of(target: &str) -> Vec<(String, String)> {
    let raw = match target.split_once('?') {
        Some((_, q)) => q,
        None => return Vec::new(),
    };
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (pct_decode(k), pct_decode(v)),
            None => (pct_decode(kv), String::new()),
        })
        .collect()
}

fn query_param_of(target: &str, key: &str) -> Option<String> {
    let raw = match target.split_once('?') {
        Some((_, q)) => q,
        None => return None,
    };
    raw.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k, v),
            None => (kv, ""),
        })
        .find(|&(k, _)| pct_decode(k) == key)
        .map(|(_, v)| pct_decode(v))
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        302 => "Found",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Pre-encoded status line (`HTTP/1.1 <code> <reason>\r\n`) for every
/// status in [`Response::reason`]'s table. Byte-identical to the
/// general encoder's output (asserted by tests); `None` for codes
/// outside the table, which fall back to the assembling path.
pub fn preencoded_status_line(status: u16) -> Option<&'static [u8]> {
    Some(match status {
        200 => b"HTTP/1.1 200 OK\r\n".as_slice(),
        204 => b"HTTP/1.1 204 No Content\r\n",
        302 => b"HTTP/1.1 302 Found\r\n",
        400 => b"HTTP/1.1 400 Bad Request\r\n",
        401 => b"HTTP/1.1 401 Unauthorized\r\n",
        403 => b"HTTP/1.1 403 Forbidden\r\n",
        404 => b"HTTP/1.1 404 Not Found\r\n",
        408 => b"HTTP/1.1 408 Request Timeout\r\n",
        413 => b"HTTP/1.1 413 Payload Too Large\r\n",
        429 => b"HTTP/1.1 429 Too Many Requests\r\n",
        431 => b"HTTP/1.1 431 Request Header Fields Too Large\r\n",
        500 => b"HTTP/1.1 500 Internal Server Error\r\n",
        503 => b"HTTP/1.1 503 Service Unavailable\r\n",
        _ => return None,
    })
}

/// Pre-encoded complete wire image for a header-less, body-less
/// response — the socket server's 404 and reject fast paths (400, 408,
/// 413, 431 and friends) are exactly these. Byte-identical to encoding
/// `Response::status(status)` the long way (asserted by tests).
pub fn preencoded_empty(status: u16) -> Option<&'static [u8]> {
    Some(match status {
        200 => b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n".as_slice(),
        204 => b"HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n",
        302 => b"HTTP/1.1 302 Found\r\nContent-Length: 0\r\n\r\n",
        400 => b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n",
        401 => b"HTTP/1.1 401 Unauthorized\r\nContent-Length: 0\r\n\r\n",
        403 => b"HTTP/1.1 403 Forbidden\r\nContent-Length: 0\r\n\r\n",
        404 => b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n",
        408 => b"HTTP/1.1 408 Request Timeout\r\nContent-Length: 0\r\n\r\n",
        413 => b"HTTP/1.1 413 Payload Too Large\r\nContent-Length: 0\r\n\r\n",
        429 => b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 0\r\n\r\n",
        431 => b"HTTP/1.1 431 Request Header Fields Too Large\r\nContent-Length: 0\r\n\r\n",
        500 => b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n",
        503 => b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n",
        _ => return None,
    })
}

/// Seconds a shed client is told to back off (`Retry-After`).
pub const SHED_RETRY_AFTER_SECS: u32 = 1;

/// The load-shed response: `503 Service Unavailable` carrying a
/// `Retry-After` back-off hint. Overload gates answer with this —
/// flow control, not an error — so clients can distinguish "try again
/// shortly" from a correctness failure.
pub fn shed_503() -> Response {
    let mut r = Response::status(503);
    r.headers
        .set("Retry-After", SHED_RETRY_AFTER_SECS.to_string());
    r
}

/// Pre-encoded complete wire image of [`shed_503`] — the pre-parse
/// shed path writes this slice straight to the socket, spending no
/// encoder work on a connection it is turning away. Byte-identical to
/// `shed_503().encode()` (asserted by tests).
pub const SHED_503_WIRE: &[u8] =
    b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n";

/// Parse-error message for a header block past [`MAX_HEADER_BYTES`]
/// (the single spelling [`status_for_parse_error`] keys off).
const ERR_HEADER_TOO_LARGE: &str = "header block too large";
/// Parse-error message for a declared body past [`MAX_BODY_BYTES`].
const ERR_BODY_TOO_LARGE: &str = "body too large";

/// Maps a request parse error to the status a transport-owning server
/// (the real-socket front-end) answers before closing the connection:
/// `431` for an oversized header block, `413` for an oversized body,
/// `400` for anything else. The in-sim engine paths keep answering a
/// uniform `400` — this mapping exists only for external clients, so
/// the simulation's byte streams are untouched.
pub fn status_for_parse_error(e: &Error) -> u16 {
    match e {
        Error::Decode(msg) if msg == ERR_HEADER_TOO_LARGE => 431,
        Error::Decode(msg) if msg == ERR_BODY_TOO_LARGE => 413,
        _ => 400,
    }
}

fn encode_headers(out: &mut BytesMut, headers: &Headers, body_len: usize) {
    for (n, v) in headers.iter() {
        if n.eq_ignore_ascii_case("Content-Length") {
            continue;
        }
        out.put_slice(n.as_bytes());
        out.put_slice(b": ");
        out.put_slice(v.as_bytes());
        out.put_slice(b"\r\n");
    }
    out.put_slice(b"Content-Length: ");
    // Stack-formatted digits: the per-response `to_string` allocation
    // was measurable on the serve hot path.
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut n = body_len;
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.put_slice(&digits[i..]);
    out.put_slice(b"\r\n\r\n");
}

fn parse_request_view(buf: &[u8]) -> Result<Option<(RequestView<'_>, usize)>> {
    let Some((head, body_start)) = split_head(buf)? else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = Method::parse(parts.next().unwrap_or(""))?;
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| Error::Decode("missing request target".into()))?;
    if parts.next() != Some("HTTP/1.1") {
        return Err(Error::Decode("bad HTTP version".into()));
    }
    let headers = parse_header_views(lines)?;
    match read_body_range(buf, body_start, &headers)? {
        Some(consumed) => Ok(Some((
            RequestView {
                method,
                target,
                headers,
                body: &buf[body_start..consumed],
            },
            consumed,
        ))),
        None => Ok(None),
    }
}

fn parse_response_view(buf: &[u8]) -> Result<Option<(ResponseView<'_>, usize)>> {
    let Some((head, body_start)) = split_head(buf)? else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    if parts.next() != Some("HTTP/1.1") {
        return Err(Error::Decode("bad HTTP version".into()));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::Decode("bad status code".into()))?;
    let headers = parse_header_views(lines)?;
    match read_body_range(buf, body_start, &headers)? {
        Some(consumed) => Ok(Some((
            ResponseView {
                status,
                headers,
                body: &buf[body_start..consumed],
            },
            consumed,
        ))),
        None => Ok(None),
    }
}

/// Finds the end of the header block. Returns the head as UTF-8 text
/// plus the byte offset where the body starts.
fn split_head(buf: &[u8]) -> Result<Option<(&str, usize)>> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n");
    match end {
        None if buf.len() > MAX_HEADER_BYTES => Err(Error::Decode(ERR_HEADER_TOO_LARGE.into())),
        None => Ok(None),
        Some(pos) if pos > MAX_HEADER_BYTES => Err(Error::Decode(ERR_HEADER_TOO_LARGE.into())),
        Some(pos) => {
            let head = std::str::from_utf8(&buf[..pos])
                .map_err(|_| Error::Decode("headers are not utf-8".into()))?;
            Ok(Some((head, pos + 4)))
        }
    }
}

fn parse_header_views<'a>(lines: impl Iterator<Item = &'a str>) -> Result<HeaderView<'a>> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Error::Decode(format!("malformed header line {line:?}")))?;
        headers.push((name.trim(), value.trim()));
    }
    Ok(HeaderView(headers))
}

/// Validates `Content-Length` (this is the single authoritative check —
/// downstream consumers must not re-derive it) and returns the total
/// consumed length when the body is fully buffered.
fn read_body_range(
    buf: &[u8],
    body_start: usize,
    headers: &HeaderView<'_>,
) -> Result<Option<usize>> {
    let len: usize = match headers.get("Content-Length") {
        Some(v) => v
            .parse()
            .map_err(|_| Error::Decode(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if len > MAX_BODY_BYTES {
        return Err(Error::Decode(ERR_BODY_TOO_LARGE.into()));
    }
    if buf.len() < body_start + len {
        return Ok(None);
    }
    Ok(Some(body_start + len))
}

fn pct_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Context passed to request handlers.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The connecting client.
    pub peer: PeerInfo,
    /// Time of the request.
    pub now: SimTime,
}

/// A request handler — what each simulated service implements.
pub trait Handler: Send + Sync {
    /// Produces the response for one request.
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response;

    /// A response this handler has already materialized for `req`, if
    /// it keeps a cache. Admission layers use the probe to exempt
    /// cache hits from load shedding (a hit is cheaper to serve than
    /// to turn away); handlers without a cache keep the default.
    fn cached(&self, _req: &Request, _ctx: &RequestCtx) -> Option<Response> {
        None
    }
}

impl<F> Handler for F
where
    F: Fn(&Request, &RequestCtx) -> Response + Send + Sync,
{
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        self(req, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Json;

    #[test]
    fn request_round_trip() {
        let mut req = Request::post("/v1/telemetry?device=7", b"{\"ok\":true}".to_vec());
        req.headers.insert("Host", "collector.iiscope.net");
        let wire = req.encode();
        let (parsed, consumed) = Request::parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path(), "/v1/telemetry");
        assert_eq!(parsed.query_param("device").as_deref(), Some("7"));
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.headers.get("host"), Some("collector.iiscope.net"));
    }

    #[test]
    fn response_round_trip_json() {
        let body = Json::obj([("offers", Json::arr([Json::Int(1)]))]);
        let resp = Response::ok_json(&body);
        let wire = resp.encode();
        let (parsed, consumed) = Response::parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert!(parsed.is_success());
        assert_eq!(parsed.body_json().unwrap(), body);
        assert_eq!(parsed.headers.get("content-type"), Some("application/json"));
    }

    #[test]
    fn parse_bytes_shares_the_input_slab() {
        let resp = Response::ok_text("zero copy body");
        let wire = resp.encode();
        let (parsed, _) = Response::parse_bytes(&wire).unwrap().unwrap();
        assert_eq!(parsed.body, b"zero copy body");
        assert!(
            parsed.body.shares_allocation(&wire),
            "body must be a slice of the wire buffer"
        );
        let req = Request::post("/a", b"req body".to_vec());
        let rwire = req.encode();
        let (rparsed, _) = Request::parse_bytes(&rwire).unwrap().unwrap();
        assert!(rparsed.body.shares_allocation(&rwire));
    }

    #[test]
    fn views_borrow_headers_and_body() {
        let mut resp = Response::ok_text("view body");
        resp.headers.insert("X-Custom", "yes");
        let wire = resp.encode();
        let (view, consumed) = ResponseView::parse(&wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(view.status, 200);
        assert_eq!(view.headers.get("x-custom"), Some("yes"));
        assert_eq!(view.body, b"view body");
        assert_eq!(view.body_str().unwrap(), "view body");

        let req = Request::get("/offers?affiliate=com.cash.app&page=2");
        let rwire = req.encode();
        let (rview, _) = RequestView::parse(&rwire).unwrap().unwrap();
        assert_eq!(rview.path(), "/offers");
        assert_eq!(
            rview.query_param("affiliate").as_deref(),
            Some("com.cash.app")
        );
        assert_eq!(rview.query_param("page").as_deref(), Some("2"));
        assert_eq!(rview.query_param("missing"), None);
    }

    #[test]
    fn incremental_parse_waits_for_body() {
        let req = Request::post("/x", vec![b'a'; 10]);
        let wire = req.encode();
        assert!(Request::parse(&wire[..wire.len() - 1]).unwrap().is_none());
        assert!(Request::parse(&wire[..10]).unwrap().is_none());
        assert!(Request::parse(&wire).unwrap().is_some());
        assert!(RequestView::parse(&wire[..wire.len() - 1])
            .unwrap()
            .is_none());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let a = Request::get("/a").encode();
        let b = Request::get("/b").encode();
        let mut both = a.to_vec();
        both.extend_from_slice(&b);
        let (first, consumed) = Request::parse(&both).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(consumed, a.len());
        let (second, _) = Request::parse(&both[consumed..]).unwrap().unwrap();
        assert_eq!(second.target, "/b");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(Request::parse(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
        assert!(Request::parse(b"GET /x HTTP/2\r\n\r\n").is_err());
        assert!(Request::parse(b"GET  HTTP/1.1\r\n\r\n").is_err());
        assert!(Response::parse(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(Request::parse(b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        let huge = format!(
            "GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(Request::parse(huge.as_bytes()).is_err());
        assert!(RequestView::parse(huge.as_bytes()).is_err());
    }

    #[test]
    fn oversized_headers_rejected_even_incomplete() {
        let big = vec![b'a'; MAX_HEADER_BYTES + 10];
        assert!(Request::parse(&big).is_err());
    }

    #[test]
    fn query_decoding() {
        let req = Request::get("/wall?country=US&desc=Install+%26+Register&flag");
        let q = req.query();
        assert_eq!(q[0], ("country".into(), "US".into()));
        assert_eq!(q[1], ("desc".into(), "Install & Register".into()));
        assert_eq!(q[2], ("flag".into(), String::new()));
        assert_eq!(Request::get("/plain").query(), Vec::new());
        assert_eq!(
            req.query_param("desc").as_deref(),
            Some("Install & Register")
        );
    }

    #[test]
    fn headers_case_insensitive_set_get() {
        let mut h = Headers::new();
        h.insert("X-Token", "a");
        h.insert("x-token", "b");
        assert_eq!(h.get("X-TOKEN"), Some("a"));
        h.set("X-Token", "c");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("x-token"), Some("c"));
    }

    #[test]
    fn preencoded_images_match_the_assembling_encoder() {
        // Every status with a named reason phrase has a pre-encoded
        // status line and empty-response image; both must be
        // byte-identical to what the general path assembles.
        let named = [
            200, 204, 302, 400, 401, 403, 404, 408, 413, 429, 431, 500, 503,
        ];
        for status in named {
            let line = preencoded_status_line(status).unwrap_or_else(|| panic!("line {status}"));
            let assembled = format!("HTTP/1.1 {status} {}\r\n", reason_of(status));
            assert_eq!(line, assembled.as_bytes(), "status line {status}");

            let wire = preencoded_empty(status).unwrap_or_else(|| panic!("empty {status}"));
            let assembled = format!(
                "HTTP/1.1 {status} {}\r\nContent-Length: 0\r\n\r\n",
                reason_of(status)
            );
            assert_eq!(wire, assembled.as_bytes(), "empty response {status}");
            // And the fast path inside encode_into emits the same.
            assert_eq!(wire, &Response::status(status).encode()[..]);
        }
        // Codes outside the table fall back and stay total.
        assert!(preencoded_status_line(418).is_none());
        assert!(preencoded_empty(418).is_none());
        assert_eq!(
            &Response::status(418).encode()[..],
            b"HTTP/1.1 418 Unknown\r\nContent-Length: 0\r\n\r\n"
        );
    }

    #[test]
    fn shed_image_matches_the_assembling_encoder() {
        // The overload fast path writes SHED_503_WIRE verbatim; it
        // must be exactly what encoding the shed response produces.
        assert_eq!(&shed_503().encode()[..], SHED_503_WIRE);
        let (resp, consumed) = Response::parse(SHED_503_WIRE).unwrap().unwrap();
        assert_eq!(consumed, SHED_503_WIRE.len());
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("Retry-After"),
            Some(SHED_RETRY_AFTER_SECS.to_string().as_str())
        );
        assert!(resp.body.is_empty());
    }

    #[test]
    fn content_length_digits_cover_all_magnitudes() {
        for len in [0usize, 1, 9, 10, 99, 100, 12345, 1_000_000] {
            let resp = Response::ok_bytes(vec![b'x'; len], "application/octet-stream");
            let wire = resp.encode();
            let text = String::from_utf8_lossy(&wire);
            assert!(
                text.contains(&format!("Content-Length: {len}\r\n")),
                "{len}"
            );
            let (parsed, consumed) = Response::parse(&wire).unwrap().unwrap();
            assert_eq!(consumed, wire.len());
            assert_eq!(parsed.body.len(), len);
        }
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(Response::status(200).reason(), "OK");
        assert_eq!(Response::status(429).reason(), "Too Many Requests");
        assert_eq!(
            Response::status(431).reason(),
            "Request Header Fields Too Large"
        );
        assert_eq!(Response::status(413).reason(), "Payload Too Large");
        assert_eq!(Response::status(999).reason(), "Unknown");
        assert!(!Response::not_found().is_success());
    }

    #[test]
    fn parse_errors_classify_for_socket_servers() {
        let oversized_headers = Request::parse(&vec![b'a'; MAX_HEADER_BYTES + 10]).unwrap_err();
        assert_eq!(status_for_parse_error(&oversized_headers), 431);
        let huge_body = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let oversized_body = Request::parse(huge_body.as_bytes()).unwrap_err();
        assert_eq!(status_for_parse_error(&oversized_body), 413);
        let garbage = Request::parse(b"NONSENSE\r\n\r\n").unwrap_err();
        assert_eq!(status_for_parse_error(&garbage), 400);
    }
}
