//! Minimal URL handling for the HTTP client and the offer records.
//!
//! Offers carry "the advertised app's Google Play Store profile"
//! as a URL (§4.1), and the crawler follows `https://play.iiscope/...`
//! style links, so we need just enough URL machinery: scheme, host,
//! optional port, path+query.

use iiscope_types::{Error, Result};
use std::fmt;

/// A parsed URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Hostname (no IP literal support needed by the pipeline).
    pub host: String,
    /// Explicit port if present.
    pub port: Option<u16>,
    /// Path plus optional query, always starting with `/`.
    pub target: String,
}

impl Url {
    /// Parses a URL of the form `scheme://host[:port][/path[?query]]`.
    pub fn parse(s: &str) -> Result<Url> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| Error::Decode(format!("missing scheme in {s:?}")))?;
        if scheme != "http" && scheme != "https" {
            return Err(Error::Decode(format!("unsupported scheme {scheme:?}")));
        }
        let (authority, target) = match rest.find('/') {
            Some(idx) => (&rest[..idx], rest[idx..].to_string()),
            None => (rest, "/".to_string()),
        };
        if authority.is_empty() {
            return Err(Error::Decode(format!("missing host in {s:?}")));
        }
        let (host, port) = match authority.split_once(':') {
            Some((h, p)) => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| Error::Decode(format!("bad port in {s:?}")))?;
                (h.to_string(), Some(port))
            }
            None => (authority.to_string(), None),
        };
        if host.is_empty() {
            return Err(Error::Decode(format!("missing host in {s:?}")));
        }
        Ok(Url {
            scheme: scheme.to_string(),
            host,
            port,
            target,
        })
    }

    /// True for `https`.
    pub fn is_tls(&self) -> bool {
        self.scheme == "https"
    }

    /// Port to connect to (explicit, or 443/80 by scheme).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or(if self.is_tls() { 443 } else { 80 })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_variants() {
        let u = Url::parse("https://play.iiscope/store/apps?id=com.x.y").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "play.iiscope");
        assert_eq!(u.port, None);
        assert_eq!(u.effective_port(), 443);
        assert_eq!(u.target, "/store/apps?id=com.x.y");
        assert!(u.is_tls());

        let u = Url::parse("http://collector:8080").unwrap();
        assert_eq!(u.effective_port(), 8080);
        assert_eq!(u.target, "/");
        assert!(!u.is_tls());
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "https://a.b/c?d=e",
            "http://host:81/",
            "https://wall.fyber.iiscope/offers?country=DE",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "no-scheme.example/x",
            "ftp://files.example/x",
            "https://",
            "https://:443/x",
            "http://host:notaport/",
        ] {
            assert!(Url::parse(bad).is_err(), "{bad:?}");
        }
    }
}
