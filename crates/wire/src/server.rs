//! Adapters that turn an [`crate::http::Handler`] into network
//! services — plain HTTP or HTTPS.
//!
//! Every simulated service (Play Store frontend, offer walls, the
//! telemetry collector, attribution postbacks) implements the small
//! [`Handler`] trait; these factories do the transport plumbing.

use crate::http::{
    preencoded_empty, status_for_parse_error, Handler, Request, RequestCtx, Response,
};
use crate::tls::session::{FixedIdentity, PlainService, TlsServerSession};
use crate::tls::ServerIdentity;
use bytes::{Buf, Bytes, BytesMut};
use iiscope_netsim::{PeerInfo, ServerIo, Session, SessionFactory};
use iiscope_types::{SeedFork, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Outcome of one socket-path feed: how many responses were encoded
/// onto the output buffer and, when a request failed to parse, the
/// status that poisoned the connection (the caller must flush `out`
/// and then close).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedReport {
    /// Complete responses encoded by this feed.
    pub responses: u32,
    /// `Some(status)` when the byte stream is poisoned and the
    /// connection must close after flushing; `None` to keep reading.
    pub close: Option<u16>,
}

/// Plaintext HTTP engine shared by the plain and TLS paths: parses
/// complete requests, dispatches to the handler, encodes responses.
///
/// When a delivery starts on a request boundary (the common case — the
/// client sends whole requests per turn), requests are parsed straight
/// out of the shared delivery slab with zero-copy bodies; only a
/// request split across deliveries falls back to the reassembly buffer.
pub struct HttpEngine {
    handler: Arc<dyn Handler>,
    buf: BytesMut,
}

impl HttpEngine {
    /// Creates an engine for `handler`.
    pub fn new(handler: Arc<dyn Handler>) -> HttpEngine {
        HttpEngine {
            handler,
            buf: BytesMut::new(),
        }
    }

    /// Feeds one delivery; encodes responses for every complete request
    /// onto `out`.
    pub fn feed_into(&mut self, data: &Bytes, peer: PeerInfo, now: SimTime, out: &mut BytesMut) {
        let ctx = RequestCtx { peer, now };
        if self.buf.is_empty() {
            // Fast path: request bodies are refcounted slices of
            // `data`; nothing is copied unless a request is incomplete.
            let mut rest = data.clone();
            loop {
                match Request::parse_bytes(&rest) {
                    Ok(Some((req, consumed))) => {
                        rest = rest.slice(consumed..);
                        let resp = self.handler.handle(&req, &ctx);
                        resp.encode_into(out);
                    }
                    Ok(None) => {
                        self.buf.extend_from_slice(&rest);
                        return;
                    }
                    Err(_) => {
                        // Malformed request: answer 400 (pre-encoded)
                        // and drop the buffer (the connection is
                        // poisoned).
                        out.extend_from_slice(preencoded_empty(400).expect("400 is pre-encoded"));
                        self.buf.clear();
                        return;
                    }
                }
            }
        }
        // Reassembly path: a previous delivery left a partial request.
        self.buf.extend_from_slice(data);
        self.drain_buf(&ctx, out, false);
    }

    /// Feeds a byte slice through the engine's own reassembly buffer,
    /// encoding responses onto the caller-owned `out`. Unlike
    /// [`HttpEngine::feed`] this allocates nothing per call: the
    /// reassembly buffer reclaims consumed front space and `out` is
    /// reused by the caller across feeds. Parse errors are classified
    /// for socket clients (431 oversized header block, 413 oversized
    /// body, 400 otherwise); the sim paths keep their uniform 400.
    pub fn feed_slice(
        &mut self,
        data: &[u8],
        peer: PeerInfo,
        now: SimTime,
        out: &mut BytesMut,
    ) -> FeedReport {
        let ctx = RequestCtx { peer, now };
        self.buf.extend_from_slice(data);
        self.drain_buf(&ctx, out, true)
    }

    /// Drains every complete request out of the reassembly buffer.
    /// On a parse error the poisoning status is encoded (classified
    /// only on the socket path so sim byte streams are untouched), the
    /// buffer is dropped, and the report tells the caller to close.
    fn drain_buf(&mut self, ctx: &RequestCtx, out: &mut BytesMut, classify: bool) -> FeedReport {
        let mut report = FeedReport::default();
        loop {
            match Request::parse(&self.buf) {
                Ok(Some((req, consumed))) => {
                    self.buf.advance(consumed);
                    let resp = self.handler.handle(&req, ctx);
                    resp.encode_into(out);
                    report.responses += 1;
                }
                Ok(None) => return report,
                Err(e) => {
                    let status = if classify {
                        status_for_parse_error(&e)
                    } else {
                        400
                    };
                    // The reject statuses (400/413/431) all have
                    // pre-encoded wire images — no per-reject assembly.
                    match preencoded_empty(status) {
                        Some(wire) => out.extend_from_slice(wire),
                        None => Response::status(status).encode_into(out),
                    }
                    self.buf.clear();
                    report.responses += 1;
                    report.close = Some(status);
                    return report;
                }
            }
        }
    }

    /// True when a partial request is sitting in the reassembly buffer
    /// (used by servers to distinguish idle from mid-request stalls).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Feeds bytes; returns encoded responses for every complete
    /// request found. Copying convenience wrapper around
    /// [`HttpEngine::feed_into`].
    pub fn feed(&mut self, data: &[u8], peer: PeerInfo, now: SimTime) -> Bytes {
        let mut out = BytesMut::new();
        self.feed_into(&Bytes::copy_from_slice(data), peer, now, &mut out);
        out.freeze()
    }
}

impl PlainService for HttpEngine {
    fn on_data(&mut self, data: Bytes, peer: PeerInfo, now: SimTime) -> Bytes {
        let mut out = BytesMut::new();
        self.feed_into(&data, peer, now, &mut out);
        out.freeze()
    }
}

/// Plain-HTTP session (no TLS).
struct PlainHttpSession {
    engine: HttpEngine,
}

impl Session for PlainHttpSession {
    fn on_turn(&mut self, io: &mut ServerIo<'_>) {
        let data = io.recv_all();
        let peer = io.peer();
        let now = io.now();
        self.engine.feed_into(&data, peer, now, io.outgoing());
    }
}

/// Factory for plain-HTTP services.
pub struct HttpFactory {
    handler: Arc<dyn Handler>,
}

impl HttpFactory {
    /// Wraps a handler.
    pub fn new(handler: Arc<dyn Handler>) -> HttpFactory {
        HttpFactory { handler }
    }
}

impl SessionFactory for HttpFactory {
    fn open(&self, _peer: PeerInfo) -> Box<dyn Session> {
        Box::new(PlainHttpSession {
            engine: HttpEngine::new(Arc::clone(&self.handler)),
        })
    }
}

/// Factory for HTTPS services: TLS with a fixed identity wrapping the
/// HTTP engine.
pub struct HttpsFactory {
    handler: Arc<dyn Handler>,
    identity: Arc<FixedIdentity>,
    seed: SeedFork,
    counter: AtomicU64,
}

impl HttpsFactory {
    /// Wraps a handler behind `identity`.
    pub fn new(
        handler: Arc<dyn Handler>,
        identity: ServerIdentity,
        seed: SeedFork,
    ) -> HttpsFactory {
        HttpsFactory {
            handler,
            identity: Arc::new(FixedIdentity(identity)),
            seed,
            counter: AtomicU64::new(0),
        }
    }
}

impl SessionFactory for HttpsFactory {
    fn open(&self, _peer: PeerInfo) -> Box<dyn Session> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        Box::new(TlsServerSession::new(
            self.identity.clone(),
            Box::new(HttpEngine::new(Arc::clone(&self.handler))),
            self.seed.fork_idx("session", n).seed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::Json;
    use iiscope_netsim::{AsnId, AsnKind, HostAddr, Network};
    use iiscope_types::Country;
    use std::net::Ipv4Addr;

    fn handler() -> Arc<dyn Handler> {
        Arc::new(|req: &Request, ctx: &RequestCtx| -> Response {
            match (req.method, req.path()) {
                (Method::Get, "/ping") => Response::ok_text("pong"),
                (Method::Get, "/whoami") => {
                    Response::ok_text(ctx.peer.addr.country.code().to_string())
                }
                (Method::Post, "/echo") => {
                    Response::ok_bytes(req.body.clone(), "application/octet-stream")
                }
                _ => Response::not_found(),
            }
        })
    }

    fn client_addr() -> HostAddr {
        HostAddr {
            ip: Ipv4Addr::new(192, 168, 1, 10),
            asn: AsnId(3320),
            asn_kind: AsnKind::Eyeball,
            country: Country::De,
        }
    }

    #[test]
    fn plain_http_service_works() {
        let net = Network::new(SeedFork::new(1));
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        net.bind(ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        let mut conn = net.connect(client_addr(), ip, 80).unwrap();
        conn.send(&Request::get("/ping").encode());
        let reply = conn.roundtrip().unwrap();
        let (resp, _) = Response::parse(&reply).unwrap().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text(), "pong");
    }

    #[test]
    fn handler_sees_peer_context() {
        let net = Network::new(SeedFork::new(2));
        let ip = Ipv4Addr::new(10, 0, 0, 2);
        net.bind(ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        let mut conn = net.connect(client_addr(), ip, 80).unwrap();
        conn.send(&Request::get("/whoami").encode());
        let reply = conn.roundtrip().unwrap();
        let (resp, _) = Response::parse(&reply).unwrap().unwrap();
        assert_eq!(resp.body_text(), "DE");
    }

    #[test]
    fn pipelined_requests_get_pipelined_responses() {
        let net = Network::new(SeedFork::new(3));
        let ip = Ipv4Addr::new(10, 0, 0, 3);
        net.bind(ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        let mut conn = net.connect(client_addr(), ip, 80).unwrap();
        let mut wire = BytesMut::new();
        Request::get("/ping").encode_into(&mut wire);
        Request::post("/echo", b"xyz".to_vec()).encode_into(&mut wire);
        conn.send(&wire);
        let reply = conn.roundtrip().unwrap();
        let (r1, used) = Response::parse(&reply).unwrap().unwrap();
        let (r2, _) = Response::parse(&reply[used..]).unwrap().unwrap();
        assert_eq!(r1.body_text(), "pong");
        assert_eq!(r2.body, b"xyz");
    }

    #[test]
    fn malformed_request_gets_400() {
        let net = Network::new(SeedFork::new(4));
        let ip = Ipv4Addr::new(10, 0, 0, 4);
        net.bind(ip, 80, Arc::new(HttpFactory::new(handler())))
            .unwrap();
        let mut conn = net.connect(client_addr(), ip, 80).unwrap();
        conn.send(b"NONSENSE\r\n\r\n");
        let reply = conn.roundtrip().unwrap();
        let (resp, _) = Response::parse(&reply).unwrap().unwrap();
        assert_eq!(resp.status, 400);
    }

    fn peer() -> PeerInfo {
        PeerInfo {
            addr: client_addr(),
            opened_at: SimTime::EPOCH,
            link: SeedFork::new(7),
        }
    }

    /// The three feed paths must agree byte-for-byte on every
    /// fragmentation of the same input stream, valid or malformed.
    fn assert_feed_parity(stream: &[u8], splits: &[usize]) {
        // Oracle: one `feed` over the whole stream.
        let mut oracle_engine = HttpEngine::new(handler());
        let oracle = oracle_engine.feed(stream, peer(), SimTime::EPOCH);

        // `feed_into`, fragmented at `splits`.
        let mut into_engine = HttpEngine::new(handler());
        let mut into_out = BytesMut::new();
        for chunk in fragments(stream, splits) {
            into_engine.feed_into(
                &Bytes::copy_from_slice(chunk),
                peer(),
                SimTime::EPOCH,
                &mut into_out,
            );
        }
        assert_eq!(&oracle[..], &into_out[..]);

        // `feed_slice`, same fragments, one reused output buffer.
        let mut slice_engine = HttpEngine::new(handler());
        let mut slice_out = BytesMut::new();
        for chunk in fragments(stream, splits) {
            slice_engine.feed_slice(chunk, peer(), SimTime::EPOCH, &mut slice_out);
        }
        assert_eq!(&oracle[..], &slice_out[..]);
    }

    fn fragments<'a>(stream: &'a [u8], splits: &[usize]) -> Vec<&'a [u8]> {
        let mut out = Vec::new();
        let mut prev = 0;
        for &s in splits {
            let s = s.min(stream.len());
            if s > prev {
                out.push(&stream[prev..s]);
                prev = s;
            }
        }
        if prev < stream.len() {
            out.push(&stream[prev..]);
        }
        out
    }

    #[test]
    fn feed_paths_agree_on_valid_streams() {
        let mut wire = BytesMut::new();
        Request::get("/ping").encode_into(&mut wire);
        Request::post("/echo", b"payload-bytes".to_vec()).encode_into(&mut wire);
        Request::get("/whoami").encode_into(&mut wire);
        let stream = wire.freeze();
        // Whole, bisected, every-7-bytes, and header/body straddling
        // fragmentations all produce the single-feed oracle bytes.
        assert_feed_parity(&stream, &[]);
        assert_feed_parity(&stream, &[stream.len() / 2]);
        assert_feed_parity(&stream, &(1..stream.len()).step_by(7).collect::<Vec<_>>());
        assert_feed_parity(&stream, &[3, 20, 21, 60]);
    }

    #[test]
    fn feed_paths_agree_on_malformed_streams() {
        let mut wire = BytesMut::new();
        Request::get("/ping").encode_into(&mut wire);
        wire.extend_from_slice(b"NONSENSE\r\n\r\n");
        let stream = wire.freeze();
        // Garbage after a valid request is plain-malformed on every
        // path: one 200 then one 400, regardless of fragmentation.
        assert_feed_parity(&stream, &[]);
        assert_feed_parity(&stream, &[5, 11]);
    }

    #[test]
    fn feed_slice_reports_and_classifies() {
        let mut engine = HttpEngine::new(handler());
        let mut out = BytesMut::new();

        // Two pipelined requests: two responses, keep reading.
        let mut wire = BytesMut::new();
        Request::get("/ping").encode_into(&mut wire);
        Request::get("/ping").encode_into(&mut wire);
        let report = engine.feed_slice(&wire, peer(), SimTime::EPOCH, &mut out);
        assert_eq!(
            report,
            FeedReport {
                responses: 2,
                close: None
            }
        );
        assert!(!engine.has_partial());

        // A partial request parks in the reassembly buffer.
        let report = engine.feed_slice(b"GET /pi", peer(), SimTime::EPOCH, &mut out);
        assert_eq!(
            report,
            FeedReport {
                responses: 0,
                close: None
            }
        );
        assert!(engine.has_partial());
        let report = engine.feed_slice(b"ng HTTP/1.1\r\n\r\n", peer(), SimTime::EPOCH, &mut out);
        assert_eq!(
            report,
            FeedReport {
                responses: 1,
                close: None
            }
        );

        // Oversized header block: 431 on the socket path.
        let mut engine = HttpEngine::new(handler());
        let mut out = BytesMut::new();
        let big = vec![b'a'; crate::http::MAX_HEADER_BYTES + 1];
        let report = engine.feed_slice(&big, peer(), SimTime::EPOCH, &mut out);
        assert_eq!(report.close, Some(431));
        let (resp, _) = Response::parse(&out.split().freeze()).unwrap().unwrap();
        assert_eq!(resp.status, 431);

        // Oversized declared body: 413 on the socket path.
        let mut engine = HttpEngine::new(handler());
        let mut out = BytesMut::new();
        let huge = format!(
            "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            crate::http::MAX_BODY_BYTES + 1
        );
        let report = engine.feed_slice(huge.as_bytes(), peer(), SimTime::EPOCH, &mut out);
        assert_eq!(report.close, Some(413));
        let (resp, _) = Response::parse(&out.split().freeze()).unwrap().unwrap();
        assert_eq!(resp.status, 413);

        // The same oversized inputs through the sim path stay 400.
        let mut engine = HttpEngine::new(handler());
        let sim = engine.feed(&big, peer(), SimTime::EPOCH);
        let (resp, _) = Response::parse(&sim).unwrap().unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn https_service_end_to_end() {
        use crate::tls::{CertAuthority, TlsClient, TrustStore};
        let seed = SeedFork::new(5);
        let net = Network::new(seed.fork("net"));
        let mut ca = CertAuthority::new("Root", seed.fork("ca"));
        let identity = ServerIdentity::issue(&mut ca, "api.test", seed.fork("id"));
        let mut roots = TrustStore::new();
        roots.install_root(ca.root_cert());
        let ip = Ipv4Addr::new(10, 0, 0, 5);
        net.bind(
            ip,
            443,
            Arc::new(HttpsFactory::new(handler(), identity, seed.fork("f"))),
        )
        .unwrap();

        let conn = net.connect(client_addr(), ip, 443).unwrap();
        let mut rng = SeedFork::new(6).rng();
        let mut tls = TlsClient::connect(conn, "api.test", &roots, None, &mut rng).unwrap();
        let body = Json::obj([("k", Json::Int(1))]);
        let reply = tls
            .request(&Request::post("/echo", body.to_string().into_bytes()).encode())
            .unwrap();
        let (resp, _) = Response::parse(&reply).unwrap().unwrap();
        assert_eq!(resp.body_json().unwrap(), body);
    }
}
