//! JSON: value model, parser, serializer.
//!
//! Offer walls answer the milkers with JSON bodies ("These responses
//! typically include offer details in JSON format containing offer
//! description, payout, and the advertised app's Google Play Store
//! profile", §4.1). The monitoring pipeline therefore needs a real JSON
//! implementation; since `serde_json` is outside the offline dependency
//! set, this module provides one:
//!
//! * [`Json`] — the value tree. Objects use [`BTreeMap`] so
//!   serialization order is deterministic, which keeps golden tests and
//!   capture logs stable across runs.
//! * [`Json::parse`] — a recursive-descent parser with a nesting-depth
//!   limit, full string escapes (including `\uXXXX` surrogate pairs),
//!   and strict trailing-garbage detection.
//! * `Json::to_string` (via `Display`) / [`Json::pretty`] /
//!   [`Json::to_bytes`] — serializers whose output re-parses to the
//!   same value (property-tested).
//! * [`Scanner`] — a streaming pull tokenizer over the same grammar.
//!   It yields [`Event`]s (strings borrowed from the input when they
//!   contain no escapes) without building the value tree, which is what
//!   the monitor's offer-wall parsers use on the milking hot path.
//!   `Json::parse` remains the reference implementation; a proptest
//!   harness asserts the two agree on accepts, rejects, and values.

use bytes::{BufMut, Bytes, BytesMut};
use iiscope_types::wirestats;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (parsed when the literal has no fraction or
    /// exponent and fits `i64`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

/// Maximum nesting depth accepted by the parser; beyond this the input
/// is rejected rather than risking stack exhaustion on adversarial
/// bodies.
pub const MAX_DEPTH: usize = 128;

/// Parse errors with byte offsets, so pipeline logs can point at the
/// offending spot of an intercepted body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for iiscope_types::Error {
    fn from(e: ParseError) -> Self {
        iiscope_types::Error::Decode(e.to_string())
    }
}

impl Json {
    // ---------------------------------------------------------------
    // Construction helpers
    // ---------------------------------------------------------------

    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value (also accepts floats with zero fraction).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // ---------------------------------------------------------------
    // Parsing
    // ---------------------------------------------------------------

    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    // ---------------------------------------------------------------
    // Serialization
    // ---------------------------------------------------------------

    /// Pretty serialization with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0)
            .expect("String never fails");
        out
    }

    /// Compact serialization straight into a fresh shared buffer — the
    /// offer-wall render path writes through [`BytesMut`] so the body
    /// lands in an `ok_json` response without an intermediate `String`
    /// copy.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.write_bytes(&mut buf);
        buf.freeze()
    }

    /// Compact serialization appended to `buf`.
    pub fn write_bytes(&self, buf: &mut BytesMut) {
        let mut w = BytesWriter(buf);
        self.write(&mut w, None, 0).expect("BytesMut never fails");
    }

    fn write(&self, out: &mut impl fmt::Write, indent: Option<usize>, level: usize) -> fmt::Result {
        match self {
            Json::Null => out.write_str("null")?,
            Json::Bool(true) => out.write_str("true")?,
            Json::Bool(false) => out.write_str("false")?,
            Json::Int(i) => write!(out, "{i}")?,
            Json::Float(f) => {
                if f.is_finite() {
                    // Ensure the literal re-parses as a float.
                    let s = format!("{f}");
                    out.write_str(&s)?;
                    if !s.contains(['.', 'e', 'E']) {
                        out.write_str(".0")?;
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json's
                    // lossy mode would refuse — we document the choice.
                    out.write_str("null")?;
                }
            }
            Json::Str(s) => write_escaped(out, s)?,
            Json::Array(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, level + 1)?;
                    item.write(out, indent, level + 1)?;
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level)?;
                }
                out.write_char(']')?;
            }
            Json::Object(map) => {
                out.write_char('{')?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    newline_indent(out, indent, level + 1)?;
                    write_escaped(out, k)?;
                    out.write_char(':')?;
                    if indent.is_some() {
                        out.write_char(' ')?;
                    }
                    v.write(out, indent, level + 1)?;
                }
                if !map.is_empty() {
                    newline_indent(out, indent, level)?;
                }
                out.write_char('}')?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Json {
    /// Compact serialization (`value.to_string()` comes from this
    /// impl); writes directly into the formatter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, None, 0)
    }
}

/// Adapts [`BytesMut`] to `fmt::Write` so the serializer can target a
/// shared buffer.
struct BytesWriter<'a>(&'a mut BytesMut);

impl fmt::Write for BytesWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.put_slice(s.as_bytes());
        Ok(())
    }
}

fn newline_indent(out: &mut impl fmt::Write, indent: Option<usize>, level: usize) -> fmt::Result {
    if let Some(n) = indent {
        out.write_char('\n')?;
        for _ in 0..n * level {
            out.write_char(' ')?;
        }
    }
    Ok(())
}

fn write_escaped(out: &mut impl fmt::Write, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            '\u{08}' => out.write_str("\\b")?,
            '\u{0C}' => out.write_str("\\f")?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32)?;
            }
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected {lit}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    // Reassemble UTF-8 multibyte sequences: we're
                    // iterating bytes of a str, so this is always valid.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_width(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

// ---------------------------------------------------------------------
// Streaming tokenizer.
// ---------------------------------------------------------------------

/// One token from the streaming [`Scanner`].
///
/// Strings and object keys borrow straight from the input buffer when
/// they contain no escape sequences — on real offer-wall bodies (plain
/// package names, titles, URLs) that is nearly every string, so the
/// milking hot path allocates nothing per field.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<'a> {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal (same `Int`-vs-`Float` rule as [`Json::parse`]).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String value (borrowed when escape-free).
    Str(Cow<'a, str>),
    /// Object key (borrowed when escape-free); always followed by the
    /// key's value events.
    Key(Cow<'a, str>),
    /// `[`
    StartArray,
    /// `]`
    EndArray,
    /// `{`
    StartObject,
    /// `}`
    EndObject,
}

/// Container state for the scanner's explicit nesting stack.
#[derive(Debug, Clone, Copy)]
enum Frame {
    Array { first: bool },
    Object { first: bool, awaiting_value: bool },
}

/// A pull tokenizer over the same strict grammar as [`Json::parse`]:
/// identical depth cap, number rules, escape handling, control-char
/// rejection, and trailing-garbage detection — but it never builds the
/// value tree.
///
/// Call [`Scanner::next_event`] until it returns `Ok(None)` (end of a
/// complete document). The trailing-garbage check fires on the call
/// *after* the document's last event, so consumers must drain to `None`
/// to get full validation.
#[derive(Debug)]
pub struct Scanner<'a> {
    input: &'a str,
    pos: usize,
    stack: Vec<Frame>,
    done: bool,
}

impl<'a> Scanner<'a> {
    /// Starts scanning `input`.
    pub fn new(input: &'a str) -> Scanner<'a> {
        Scanner {
            input,
            pos: 0,
            stack: Vec::new(),
            done: false,
        }
    }

    /// Byte offset of the scan cursor (for error reporting by callers).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Pulls the next token, `Ok(None)` once a complete document has
    /// been consumed (including the trailing-garbage check).
    pub fn next_event(&mut self) -> Result<Option<Event<'a>>, ParseError> {
        if self.done {
            self.skip_ws();
            if self.pos != self.input.len() {
                return Err(self.err("trailing characters"));
            }
            return Ok(None);
        }
        self.skip_ws();
        let ev = match self.stack.last().copied() {
            None => self.value_event()?,
            Some(Frame::Array { first }) => {
                if first {
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        self.stack.pop();
                        Event::EndArray
                    } else {
                        let i = self.stack.len() - 1;
                        self.stack[i] = Frame::Array { first: false };
                        self.skip_ws();
                        self.value_event()?
                    }
                } else {
                    match self.bump() {
                        Some(b',') => {
                            self.skip_ws();
                            self.value_event()?
                        }
                        Some(b']') => {
                            self.stack.pop();
                            Event::EndArray
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(Frame::Object {
                first,
                awaiting_value,
            }) => {
                if awaiting_value {
                    let i = self.stack.len() - 1;
                    self.stack[i] = Frame::Object {
                        first: false,
                        awaiting_value: false,
                    };
                    self.value_event()?
                } else if first {
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        self.stack.pop();
                        Event::EndObject
                    } else {
                        self.key_event()?
                    }
                } else {
                    match self.bump() {
                        Some(b',') => {
                            self.skip_ws();
                            self.key_event()?
                        }
                        Some(b'}') => {
                            self.stack.pop();
                            Event::EndObject
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
        };
        if self.stack.is_empty() {
            // A scalar at top level, or the final closing bracket:
            // the document is complete.
            self.done = true;
        }
        wirestats::add_json_events(1);
        Ok(Some(ev))
    }

    /// Consumes the next complete value — a scalar, or a whole
    /// container including everything nested inside it. Used by the
    /// schema-directed wall parsers to step over fields they don't
    /// extract.
    pub fn skip_value(&mut self) -> Result<(), ParseError> {
        let mut depth = 0usize;
        loop {
            match self.next_event()? {
                None => return Err(self.err("unexpected end of input")),
                Some(Event::StartArray | Event::StartObject) => depth += 1,
                Some(Event::EndArray | Event::EndObject) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(Event::Key(_)) => {}
                Some(_) => {
                    if depth == 0 {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Builds the [`Json`] tree for the next complete value from the
    /// event stream (duplicate object keys last-wins, matching
    /// `Json::parse`). Draining a fresh scanner with this plus a final
    /// `next_event` reproduces `Json::parse` exactly — the equivalence
    /// proptests lean on that.
    pub fn parse_value(&mut self) -> Result<Json, ParseError> {
        let ev = self
            .next_event()?
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.finish_value(ev)
    }

    fn finish_value(&mut self, ev: Event<'a>) -> Result<Json, ParseError> {
        Ok(match ev {
            Event::Null => Json::Null,
            Event::Bool(b) => Json::Bool(b),
            Event::Int(i) => Json::Int(i),
            Event::Float(f) => Json::Float(f),
            Event::Str(s) => Json::Str(s.into_owned()),
            Event::Key(_) | Event::EndArray | Event::EndObject => {
                unreachable!("scanner never starts a value with {ev:?}")
            }
            Event::StartArray => {
                let mut items = Vec::new();
                loop {
                    match self
                        .next_event()?
                        .ok_or_else(|| self.err("unexpected end of input"))?
                    {
                        Event::EndArray => break,
                        ev => items.push(self.finish_value(ev)?),
                    }
                }
                Json::Array(items)
            }
            Event::StartObject => {
                let mut map = BTreeMap::new();
                loop {
                    match self
                        .next_event()?
                        .ok_or_else(|| self.err("unexpected end of input"))?
                    {
                        Event::EndObject => break,
                        Event::Key(k) => {
                            let v = self.parse_inner_value()?;
                            map.insert(k.into_owned(), v);
                        }
                        _ => unreachable!("scanner yields Key/End inside objects"),
                    }
                }
                Json::Object(map)
            }
        })
    }

    fn parse_inner_value(&mut self) -> Result<Json, ParseError> {
        let ev = self
            .next_event()?
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.finish_value(ev)
    }

    // -- lexer internals: byte-identical behavior to `Parser` ----------

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes()[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(format!("invalid literal, expected {lit}")))
        }
    }

    fn value_event(&mut self) -> Result<Event<'a>, ParseError> {
        // Same cap as `Parser::value`: a value nested inside more than
        // MAX_DEPTH containers is rejected.
        if self.stack.len() > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Event::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Event::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Event::Bool(false))
            }
            Some(b'"') => Ok(Event::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.stack.push(Frame::Array { first: true });
                Ok(Event::StartArray)
            }
            Some(b'{') => {
                self.pos += 1;
                self.stack.push(Frame::Object {
                    first: true,
                    awaiting_value: false,
                });
                Ok(Event::StartObject)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn key_event(&mut self) -> Result<Event<'a>, ParseError> {
        let key = self.string()?;
        self.skip_ws();
        self.expect(b':')?;
        let i = self.stack.len() - 1;
        self.stack[i] = Frame::Object {
            first: false,
            awaiting_value: true,
        };
        Ok(Event::Key(key))
    }

    /// Escape-free strings come back borrowed; the first backslash
    /// falls over to an owned buffer with `Parser::string`'s exact
    /// escape/surrogate/control-char rules.
    fn string(&mut self) -> Result<Cow<'a, str>, ParseError> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                None => {
                    return Err(self.err("unterminated string"));
                }
                Some(b'"') => {
                    let s = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\') => break,
                Some(c) if c < 0x20 => {
                    self.pos += 1;
                    return Err(self.err("raw control char in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
        // Slow path: copy what we have, then decode escapes.
        let mut out = String::from(&self.input[start..self.pos]);
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(Cow::Owned(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes().len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes()[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Event<'a>, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Event::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Event::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::Float(-0.015));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_structures() {
        let v = Json::parse(r#"{"offers":[{"payout":0.06,"desc":"Install and Launch"}],"n":1}"#)
            .unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(1));
        let offers = v.get("offers").and_then(Json::as_array).unwrap();
        assert_eq!(offers.len(), 1);
        assert_eq!(
            offers[0].get("desc").and_then(Json::as_str),
            Some("Install and Launch")
        );
        assert_eq!(offers[0].get("payout").and_then(Json::as_f64), Some(0.06));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndA""#).unwrap(),
            Json::str("a\"b\\c\ndA")
        );
        // Surrogate pair: 😀 U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        // Raw multibyte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo €\"").unwrap(), Json::str("héllo €"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "\"\\x\"",
            "\"\\ud800\"",
            "nulll",
            "1 2",
            "{\"a\":1,}",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn serialize_compact_and_stable() {
        let v = Json::obj([
            ("b", Json::Int(2)),
            ("a", Json::arr([Json::Null, Json::Bool(true)])),
        ]);
        // Keys sort: deterministic output.
        assert_eq!(v.to_string(), r#"{"a":[null,true],"b":2}"#);
    }

    #[test]
    fn serialize_floats_reparse_as_floats() {
        let v = Json::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::obj([
            ("name", Json::str("Cash Time")),
            (
                "tasks",
                Json::arr([Json::str("survey"), Json::str("video")]),
            ),
            ("points", Json::Int(850)),
        ]);
        let pretty = v.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escaped_control_chars_round_trip() {
        let v = Json::str("\u{01}\u{1F}");
        let s = v.to_string();
        assert_eq!(s, "\"\\u0001\\u001f\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    fn drain(input: &str) -> Result<(Vec<String>, Json), ParseError> {
        let mut sc = Scanner::new(input);
        let value = sc.parse_value()?;
        let mut labels = Vec::new();
        labels.push("drained".to_string());
        match sc.next_event()? {
            None => Ok((labels, value)),
            Some(ev) => panic!("extra event after document: {ev:?}"),
        }
    }

    #[test]
    fn scanner_yields_expected_events() {
        let mut sc = Scanner::new(r#"{"offers":[{"payout":0.06},7],"ok":true}"#);
        let mut evs = Vec::new();
        while let Some(ev) = sc.next_event().unwrap() {
            evs.push(ev);
        }
        assert_eq!(
            evs,
            vec![
                Event::StartObject,
                Event::Key(Cow::Borrowed("offers")),
                Event::StartArray,
                Event::StartObject,
                Event::Key(Cow::Borrowed("payout")),
                Event::Float(0.06),
                Event::EndObject,
                Event::Int(7),
                Event::EndArray,
                Event::Key(Cow::Borrowed("ok")),
                Event::Bool(true),
                Event::EndObject,
            ]
        );
    }

    #[test]
    fn scanner_strings_borrow_when_escape_free() {
        let input = r#"["com.cash.app","a\nb"]"#;
        let mut sc = Scanner::new(input);
        assert_eq!(sc.next_event().unwrap(), Some(Event::StartArray));
        match sc.next_event().unwrap() {
            Some(Event::Str(Cow::Borrowed(s))) => assert_eq!(s, "com.cash.app"),
            other => panic!("expected borrowed string, got {other:?}"),
        }
        match sc.next_event().unwrap() {
            Some(Event::Str(Cow::Owned(s))) => assert_eq!(s, "a\nb"),
            other => panic!("expected owned string, got {other:?}"),
        }
    }

    #[test]
    fn scanner_agrees_with_tree_parser() {
        for input in [
            "null",
            " 42 ",
            r#"{"a":1,"a":2}"#,
            r#"{"b":{"c":[1,2.5,"x"],"d":null},"a":[[]]}"#,
            r#"[{"k":"v\u0041"},true,false,-0.5e2]"#,
            "\"héllo 😀\"",
        ] {
            let (_, streamed) = drain(input).unwrap();
            assert_eq!(streamed, Json::parse(input).unwrap(), "input {input:?}");
        }
    }

    #[test]
    fn scanner_rejects_what_tree_parser_rejects() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "\"\\x\"",
            "\"\\ud800\"",
            "nulll",
            "1 2",
            "{\"a\":1,}",
            "+1",
            "\u{01}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail tree parse");
            assert!(drain(bad).is_err(), "{bad:?} should fail streaming parse");
        }
    }

    #[test]
    fn scanner_depth_cap_matches_parser() {
        let too_deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&too_deep).is_err());
        assert!(drain(&too_deep).is_err());
        let ok = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert_eq!(Json::parse(&ok).is_ok(), drain(&ok).is_ok());
    }

    #[test]
    fn scanner_skip_value_steps_over_containers() {
        let mut sc = Scanner::new(r#"{"skip":{"deep":[1,{"x":2}]},"keep":9}"#);
        assert_eq!(sc.next_event().unwrap(), Some(Event::StartObject));
        assert_eq!(sc.next_event().unwrap(), Some(Event::Key("skip".into())));
        sc.skip_value().unwrap();
        assert_eq!(sc.next_event().unwrap(), Some(Event::Key("keep".into())));
        assert_eq!(sc.next_event().unwrap(), Some(Event::Int(9)));
        assert_eq!(sc.next_event().unwrap(), Some(Event::EndObject));
        assert_eq!(sc.next_event().unwrap(), None);
    }

    #[test]
    fn to_bytes_matches_to_string() {
        let v = Json::obj([
            ("b", Json::Int(2)),
            ("a", Json::arr([Json::Null, Json::str("x\ny")])),
        ]);
        assert_eq!(&v.to_bytes()[..], v.to_string().as_bytes());
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse(r#"{"x":1}"#).unwrap();
        assert!(v.as_str().is_none());
        assert!(v.get("y").is_none());
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Int(1).as_bool().is_none());
        assert_eq!(Json::Float(3.0).as_i64(), Some(3));
        assert_eq!(Json::Float(3.5).as_i64(), None);
    }
}
