//! JSON: value model, parser, serializer.
//!
//! Offer walls answer the milkers with JSON bodies ("These responses
//! typically include offer details in JSON format containing offer
//! description, payout, and the advertised app's Google Play Store
//! profile", §4.1). The monitoring pipeline therefore needs a real JSON
//! implementation; since `serde_json` is outside the offline dependency
//! set, this module provides one:
//!
//! * [`Json`] — the value tree. Objects use [`BTreeMap`] so
//!   serialization order is deterministic, which keeps golden tests and
//!   capture logs stable across runs.
//! * [`Json::parse`] — a recursive-descent parser with a nesting-depth
//!   limit, full string escapes (including `\uXXXX` surrogate pairs),
//!   and strict trailing-garbage detection.
//! * `Json::to_string` (via `Display`) / [`Json::pretty`] — serializers whose output
//!   re-parses to the same value (property-tested).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (parsed when the literal has no fraction or
    /// exponent and fits `i64`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Json>),
}

/// Maximum nesting depth accepted by the parser; beyond this the input
/// is rejected rather than risking stack exhaustion on adversarial
/// bodies.
pub const MAX_DEPTH: usize = 128;

/// Parse errors with byte offsets, so pipeline logs can point at the
/// offending spot of an intercepted body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for iiscope_types::Error {
    fn from(e: ParseError) -> Self {
        iiscope_types::Error::Decode(e.to_string())
    }
}

impl Json {
    // ---------------------------------------------------------------
    // Construction helpers
    // ---------------------------------------------------------------

    /// Builds an object from key/value pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value (also accepts floats with zero fraction).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9e15 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // ---------------------------------------------------------------
    // Parsing
    // ---------------------------------------------------------------

    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }

    // ---------------------------------------------------------------
    // Serialization
    // ---------------------------------------------------------------

    /// Pretty serialization with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Ensure the literal re-parses as a float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json's
                    // lossy mode would refuse — we document the choice.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact serialization (`value.to_string()` comes from this
    /// impl).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected {lit}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("lone low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(c) => {
                    // Reassemble UTF-8 multibyte sequences: we're
                    // iterating bytes of a str, so this is always valid.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_width(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("-1.5e-2").unwrap(), Json::Float(-0.015));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_structures() {
        let v = Json::parse(r#"{"offers":[{"payout":0.06,"desc":"Install and Launch"}],"n":1}"#)
            .unwrap();
        assert_eq!(v.get("n").and_then(Json::as_i64), Some(1));
        let offers = v.get("offers").and_then(Json::as_array).unwrap();
        assert_eq!(offers.len(), 1);
        assert_eq!(
            offers[0].get("desc").and_then(Json::as_str),
            Some("Install and Launch")
        );
        assert_eq!(offers[0].get("payout").and_then(Json::as_f64), Some(0.06));
    }

    #[test]
    fn parse_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\ndA""#).unwrap(),
            Json::str("a\"b\\c\ndA")
        );
        // Surrogate pair: 😀 U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        // Raw multibyte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo €\"").unwrap(), Json::str("héllo €"));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            "1e",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "\"\\x\"",
            "\"\\ud800\"",
            "nulll",
            "1 2",
            "{\"a\":1,}",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn serialize_compact_and_stable() {
        let v = Json::obj([
            ("b", Json::Int(2)),
            ("a", Json::arr([Json::Null, Json::Bool(true)])),
        ]);
        // Keys sort: deterministic output.
        assert_eq!(v.to_string(), r#"{"a":[null,true],"b":2}"#);
    }

    #[test]
    fn serialize_floats_reparse_as_floats() {
        let v = Json::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::obj([
            ("name", Json::str("Cash Time")),
            (
                "tasks",
                Json::arr([Json::str("survey"), Json::str("video")]),
            ),
            ("points", Json::Int(850)),
        ]);
        let pretty = v.pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escaped_control_chars_round_trip() {
        let v = Json::str("\u{01}\u{1F}");
        let s = v.to_string();
        assert_eq!(s, "\"\\u0001\\u001f\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn accessors_return_none_on_type_mismatch() {
        let v = Json::parse(r#"{"x":1}"#).unwrap();
        assert!(v.as_str().is_none());
        assert!(v.get("y").is_none());
        assert!(Json::Null.get("x").is_none());
        assert!(Json::Int(1).as_bool().is_none());
        assert_eq!(Json::Float(3.0).as_i64(), Some(3));
        assert_eq!(Json::Float(3.5).as_i64(), None);
    }
}
