//! # iiscope
//!
//! A production-quality Rust reproduction of *"Understanding
//! Incentivized Mobile App Installs on Google Play Store"*
//! (Farooqi et al., ACM IMC 2020).
//!
//! The crate is a facade over the `iiscope-*` workspace:
//!
//! * [`World`] builds the complete simulated ecosystem — network, PKI,
//!   Play Store, the seven IIPs of Table 1, attribution mediator,
//!   crowd-worker populations, monitoring rig, Crunchbase snapshot;
//! * [`World::run_honey_study`] reproduces the §3 experiment
//!   (purchased installs, telemetry, forensics);
//! * [`World::run_wild_study`] reproduces the §4 longitudinal study
//!   (offer-wall milking through a MITM proxy, Play crawls, campaign
//!   impact);
//! * [`experiments`] regenerates every table and figure.
//!
//! ```no_run
//! use iiscope::{World, WorldConfig};
//!
//! let world = World::build(WorldConfig::small(42)).unwrap();
//! let honey = world.run_honey_study(world.study_start()).unwrap();
//! let artifacts = world.run_wild_study().unwrap();
//! println!("{}", iiscope::experiments::full_report(&world, &artifacts, honey));
//! ```

#![forbid(unsafe_code)]

pub use iiscope_core::*;

/// Subsystem crates, re-exported for direct access.
pub mod subsystems {
    pub use iiscope_analysis as analysis;
    pub use iiscope_attribution as attribution;
    pub use iiscope_devices as devices;
    pub use iiscope_honeyapp as honeyapp;
    pub use iiscope_iip as iip;
    pub use iiscope_load as load;
    pub use iiscope_monitor as monitor;
    pub use iiscope_netsim as netsim;
    pub use iiscope_playstore as playstore;
    pub use iiscope_serve as serve;
    pub use iiscope_types as types;
    pub use iiscope_wire as wire;
}
