//! Overload resilience end to end: a server with armed shed watermarks
//! keeps its honest clients whole while a deterministic hostile mix
//! (aborters, slowloris, idlers, flooders) leans on it, and a killed
//! accept worker is respawned without dropping the pool.
//!
//! Two layers run here:
//!
//! * the in-suite **degradation** test — short clean vs hostile runs,
//!   asserting goodput and p99 bounds plus zero worker deaths — gates
//!   every PR;
//! * the `#[ignore]`d **soak** — longer stages, an uncached router so
//!   renders are expensive enough to trip the watermarks, and a
//!   `BENCH_overload.json` artifact — runs nightly in CI.

use iiscope::subsystems::honeyapp::HONEY_PACKAGE;
use iiscope::subsystems::load::hostile::{HostileMix, HostilePlan};
use iiscope::subsystems::load::{self, LoadSpec, LoadStage, MixEntry, StageResult};
use iiscope::subsystems::serve::{ServeConfig, Server, ShedConfig};
use iiscope::{World, WorldConfig};
use std::sync::OnceLock;
use std::time::Duration;

const AFFILIATE: &str = "com.mobvantage.cashforapps";

/// One small world shared by every test in this binary.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = WorldConfig::small(7);
        cfg.advertised_apps = 8;
        cfg.baseline_apps = 4;
        World::build(cfg).unwrap()
    })
}

/// The watermark set both runs of a comparison share — the comparison
/// is hostile-vs-clean traffic, never armed-vs-unarmed servers.
fn shed_config() -> ShedConfig {
    ShedConfig {
        accept_queue_ms: Some(250),
        max_inflight: Some(16),
        per_route: Some(12),
        deadline: Some(Duration::from_millis(500)),
    }
}

fn honest_mix() -> Vec<MixEntry> {
    vec![
        MixEntry {
            name: "wall:fyber".into(),
            target: format!("/wall/fyber/offers?affiliate={AFFILIATE}"),
            weight: 4,
        },
        MixEntry {
            name: "store:honey".into(),
            target: format!("/store/apps/details?id={HONEY_PACKAGE}"),
            weight: 2,
        },
        MixEntry {
            name: "apk:honey".into(),
            target: format!("/apk?id={HONEY_PACKAGE}"),
            weight: 1,
        },
    ]
}

fn hostile_plan(seed: u64) -> HostilePlan {
    HostilePlan {
        aborters: 2,
        slowloris: 2,
        idlers: 2,
        flooders: 1,
        drip_ms: 10,
        seed,
        targets: vec![
            format!("/wall/fyber/offers?affiliate={AFFILIATE}"),
            format!("/store/apps/details?id={HONEY_PACKAGE}"),
        ],
    }
}

/// Sums honest-client books across stages into one comparison row.
struct RunSummary {
    goodput_rps: f64,
    p99_us: u64,
    errors: u64,
    sheds: u64,
}

fn summarize(results: &[StageResult]) -> RunSummary {
    RunSummary {
        goodput_rps: results.iter().map(StageResult::goodput_rps).sum::<f64>()
            / results.len().max(1) as f64,
        p99_us: results.iter().map(|r| r.p99_us).max().unwrap_or(0),
        errors: results.iter().map(|r| r.tally.errors()).sum(),
        sheds: results.iter().map(|r| r.tally.sheds_503).sum(),
    }
}

/// The PR gate: with the watermarks armed, a hostile mix may cost the
/// honest clients some throughput and latency, but bounded amounts —
/// and no worker dies.
#[test]
fn hostile_mix_degrades_but_does_not_starve_honest_clients() {
    let world = world();
    let spec = LoadSpec {
        stages: vec![LoadStage { qps: 300, secs: 2 }],
        conns: 4,
        mix: honest_mix(),
        seed: 42,
    };

    let cfg = ServeConfig {
        workers: 2,
        conn_cap: 64,
        sim_now: world.study_end(),
        shed: shed_config(),
        ..ServeConfig::default()
    };

    // Clean baseline: honest load only.
    let server = Server::start("127.0.0.1:0", cfg.clone(), world.serve_router()).unwrap();
    let clean = summarize(&load::run(server.local_addr(), &spec).unwrap());
    assert_eq!(clean.errors, 0, "clean run must be error-free");
    assert_eq!(server.worker_respawns(), 0);
    assert_eq!(server.conn_panics(), 0);
    server.stop();

    // Same server config, same honest load, hostile mix alongside.
    let server = Server::start("127.0.0.1:0", cfg, world.serve_router()).unwrap();
    let mix = HostileMix::launch(server.local_addr(), &hostile_plan(42));
    let hostile = summarize(&load::run(server.local_addr(), &spec).unwrap());
    let hstats = mix.stop();

    // The hostile clients actually did their jobs.
    assert!(hstats.aborts > 0, "aborters never fired");
    assert!(hstats.drip_bytes > 0, "slowloris never dripped");
    assert!(hstats.idle_sessions > 0, "idlers never parked");
    assert!(hstats.floods > 0, "flooders never flooded");

    // Honest clients stay whole: bounded goodput and latency cost,
    // no responses outside the 2xx/404/503 envelope.
    assert_eq!(hostile.errors, 0, "honest clients saw hard errors");
    assert!(
        hostile.goodput_rps >= 0.70 * clean.goodput_rps,
        "goodput collapsed: hostile {:.0} vs clean {:.0} rps",
        hostile.goodput_rps,
        clean.goodput_rps
    );
    let p99_ceiling = (3 * clean.p99_us).max(30_000);
    assert!(
        hostile.p99_us <= p99_ceiling,
        "honest p99 blew out: {}us vs ceiling {}us (clean {}us)",
        hostile.p99_us,
        p99_ceiling,
        clean.p99_us
    );

    // The pool survived the abuse: nothing died, nothing respawned.
    assert_eq!(server.worker_respawns(), 0, "a worker died under load");
    assert_eq!(server.conn_panics(), 0);
    server.stop();
    assert_eq!(server.inflight(), 0);
}

/// Supervision proof at the integration level: an injected acceptor
/// panic mid-traffic is respawned and the restored pool keeps serving
/// the honest mix.
#[test]
fn injected_worker_death_heals_under_live_traffic() {
    let world = world();
    let cfg = ServeConfig {
        workers: 2,
        conn_cap: 32,
        sim_now: world.study_end(),
        shed: shed_config(),
        fault_panic_after_conns: Some(2),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg, world.serve_router()).unwrap();
    let spec = LoadSpec {
        stages: vec![LoadStage { qps: 200, secs: 1 }],
        conns: 4,
        mix: honest_mix(),
        seed: 7,
    };
    let summary = summarize(&load::run(server.local_addr(), &spec).unwrap());
    // The fault fires once traffic crosses the threshold; give the
    // supervisor its tick to replace the dead worker.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.worker_respawns() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.worker_respawns(), 1, "supervisor never respawned");
    assert_eq!(summary.errors, 0, "the worker death surfaced to clients");
    assert!(summary.goodput_rps > 0.0);
    // The restored pool still accepts fresh connections.
    load::probe(server.local_addr(), &honest_mix()).unwrap();
    server.stop();
    assert_eq!(server.inflight(), 0);
}

/// Nightly soak: longer stages over an *uncached* router (renders are
/// expensive, so the watermarks genuinely trip), a closed-loop burst
/// that must produce visible 503 sheds, and the `BENCH_overload.json`
/// artifact CI uploads. Run with:
/// `cargo test -q --release --test overload -- --ignored`.
#[test]
#[ignore = "nightly soak; run explicitly"]
fn overload_soak_emits_bench_json() {
    let world = world();
    let spec = LoadSpec {
        stages: vec![
            LoadStage { qps: 500, secs: 3 },
            LoadStage { qps: 0, secs: 3 },
        ],
        conns: 8,
        mix: honest_mix(),
        seed: 42,
    };
    let cfg = ServeConfig {
        workers: 2,
        conn_cap: 64,
        sim_now: world.study_end(),
        shed: ShedConfig {
            accept_queue_ms: Some(250),
            // Tight enough that the closed-loop burst over an uncached
            // router must shed, loose enough that the paced stage
            // mostly renders.
            max_inflight: Some(6),
            per_route: Some(6),
            deadline: Some(Duration::from_millis(500)),
        },
        ..ServeConfig::default()
    };

    let server = Server::start("127.0.0.1:0", cfg.clone(), world.serve_router_uncached()).unwrap();
    let clean_results = load::run(server.local_addr(), &spec).unwrap();
    let clean = summarize(&clean_results);
    let clean_sheds_server = server.sheds();
    assert_eq!(server.worker_respawns(), 0);
    server.stop();

    let server = Server::start("127.0.0.1:0", cfg, world.serve_router_uncached()).unwrap();
    let mix = HostileMix::launch(server.local_addr(), &hostile_plan(42));
    let hostile_results = load::run(server.local_addr(), &spec).unwrap();
    let hstats = mix.stop();
    let hostile = summarize(&hostile_results);
    let hostile_sheds_server = server.sheds();
    let respawns = server.worker_respawns();
    let panics = server.conn_panics();
    server.stop();

    // Sheds are visible as 503 counts — on the server's books and in
    // the honest clients' tallies — never as errors.
    assert!(
        clean.sheds + hostile.sheds > 0 || clean_sheds_server + hostile_sheds_server > 0,
        "the burst stage never tripped a watermark"
    );
    assert_eq!(clean.errors, 0);
    assert_eq!(hostile.errors, 0);
    assert_eq!(respawns, 0, "a worker died during the soak");
    assert!(
        hostile.goodput_rps >= 0.70 * clean.goodput_rps,
        "goodput collapsed: hostile {:.0} vs clean {:.0} rps",
        hostile.goodput_rps,
        clean.goodput_rps
    );
    let p99_ceiling = ((3 * clean.p99_us) as f64).max(2_000.0);
    assert!(
        (hostile.p99_us as f64) <= p99_ceiling,
        "honest p99 blew out: {}us vs ceiling {:.0}us",
        hostile.p99_us,
        p99_ceiling
    );

    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope("small", 7, 1));
    s.push_str(
        "  \"shed\": {\"accept_queue_ms\": 250, \"max_inflight\": 6, \
         \"per_route\": 6, \"deadline_ms\": 500},\n",
    );
    for (label, results) in [("clean", &clean_results), ("hostile", &hostile_results)] {
        s.push_str(&format!("  \"{label}\": [\n"));
        for (i, r) in results.iter().enumerate() {
            let comma = if i + 1 < results.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"qps_target\": {}, \"secs\": {}, \"done\": {}, \
                 \"requests_per_sec\": {:.1}, \"goodput_rps\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"reconnects\": {}",
                r.stage.qps,
                r.stage.secs,
                r.done,
                r.achieved_rps,
                r.goodput_rps(),
                r.p50_us,
                r.p99_us,
                r.reconnects
            ));
            for (key, value) in r.tally.fields() {
                s.push_str(&format!(", \"{key}\": {value}"));
            }
            s.push_str(&format!("}}{comma}\n"));
        }
        s.push_str("  ],\n");
    }
    s.push_str(&format!(
        "  \"hostile_clients\": {{\"aborts\": {}, \"drip_bytes\": {}, \
         \"idle_sessions\": {}, \"floods\": {}, \"denied_503\": {}, \
         \"server_closes\": {}}},\n",
        hstats.aborts,
        hstats.drip_bytes,
        hstats.idle_sessions,
        hstats.floods,
        hstats.denied_503,
        hstats.server_closes
    ));
    s.push_str(&format!(
        "  \"server\": {{\"sheds_503_clean\": {clean_sheds_server}, \
         \"sheds_503_hostile\": {hostile_sheds_server}, \
         \"conn_panics\": {panics}, \"worker_respawns\": {respawns}}},\n"
    ));
    s.push_str(&format!(
        "  \"ratios\": {{\"goodput\": {:.3}, \"p99\": {:.3}}}\n",
        hostile.goodput_rps / clean.goodput_rps.max(1e-9),
        hostile.p99_us as f64 / clean.p99_us.max(1) as f64
    ));
    s.push_str("}\n");
    std::fs::write("BENCH_overload.json", &s).unwrap();
    eprintln!("{s}");
}
