//! Ablation tests for the design choices DESIGN.md calls out. Each
//! flips one mechanism and asserts the paper-relevant effect moves the
//! predicted way.

use iiscope::experiments::{Table5, Table6};
use iiscope::subsystems::monitor::{FuzzerConfig, UiFuzzer};
use iiscope::subsystems::playstore::{ChartRanking, EnforcementConfig};
use iiscope::{World, WorldConfig};
use iiscope_types::Country;

/// Certificate pinning defeats the interception pipeline entirely —
/// the §4.1 footnote's counterfactual.
#[test]
fn ablation_cert_pinning_blinds_the_monitor() {
    let build = |pin: bool| {
        let mut cfg = WorldConfig::small(808);
        cfg.walls_pin_certificates = pin;
        // A shorter window keeps this ablation cheap.
        cfg.monitoring_days = 12;
        cfg.crawl_cadence_days = 4;
        World::build(cfg).expect("build")
    };
    let unpinned = build(false);
    let a = unpinned.run_wild_study().expect("wild");
    assert!(
        a.dataset.offers().len() > 0,
        "unpinned world must observe offers"
    );

    let pinned = build(true);
    let a = pinned.run_wild_study().expect("wild");
    assert!(
        a.dataset.offers().len() == 0,
        "pinning should blind the monitor, saw {} offers",
        a.dataset.offers().len()
    );
}

/// Shallow fuzzing loses the offers on later wall pages — coverage
/// depends on the §4.1 scroll-through behaviour.
#[test]
fn ablation_fuzzer_scroll_depth_controls_coverage() {
    let world = World::build(WorldConfig::small(809)).expect("build");
    // Put 25 live offers on one wall (more than two pages' worth).
    let platform = &world.platforms[&iiscope_types::IipId::Fyber];
    platform
        .deposit(world.honey.developer, iiscope_types::Usd::from_dollars(500))
        .expect("deposit");
    for i in 0..25 {
        platform
            .create_campaign(
                iiscope::subsystems::iip::CampaignSpec {
                    developer: world.honey.developer,
                    package: iiscope_types::PackageName::new(format!("com.depth{i}.app"))
                        .expect("valid"),
                    store_url: format!(
                        "https://play.iiscope/store/apps/details?id=com.depth{i}.app"
                    ),
                    goal: iiscope::subsystems::attribution::ConversionGoal::InstallAndOpen,
                    payout: iiscope_types::Usd::from_cents(5),
                    cap: 50,
                    countries: vec![],
                },
                world.study_start(),
            )
            .expect("campaign");
    }
    let count = |pages: usize| -> usize {
        let fuzzer = UiFuzzer::new(FuzzerConfig {
            max_scroll_pages: pages,
        });
        let mut total = std::collections::BTreeSet::new();
        for app in &world.affiliate_apps {
            for o in world.infra.milk(app, Country::Us, &fuzzer).expect("milk") {
                total.insert((o.iip, o.raw.offer_key));
            }
        }
        total.len()
    };
    let shallow = count(1);
    let deep = count(50);
    assert!(
        deep > shallow,
        "deep scroll ({deep}) must find more than one page ({shallow})"
    );
}

/// Chart-ranking ablation. §4.3.1's causal story — activity offers
/// move charts *because* Play ranks by engagement — has a clean
/// counterfactual: under a naive install-count ranker, purchase-driven
/// chart placement stops working. Concretely, the World on Fire case
/// study (Figure 5b) reaches the top-grossing chart through purchase
/// offers under the engagement/revenue ranker, and cannot under the
/// install ranker (its install volume is unremarkable). The vetted
/// advantage of Table 6 also holds only under the default ranker.
#[test]
fn ablation_chart_ranking_drives_the_vetted_advantage() {
    let run = |ranking: ChartRanking| {
        let mut cfg = WorldConfig::small(810);
        cfg.ranking = ranking;
        let world = World::build(cfg).expect("build");
        let artifacts = world.run_wild_study().expect("wild");
        let t6 = Table6::run(&world, &artifacts);
        let f5 = iiscope::experiments::Figure5::run(&world, &artifacts);
        (t6.vetted.rate(), t6.unvetted.rate(), f5.wof.presence.len())
    };
    let (veng, ueng, wof_eng) = run(ChartRanking::EngagementWeighted);
    let (_vinst, _uinst, wof_inst) = run(ChartRanking::InstallWeighted);
    // Default: vetted lead (the Table 6 result) and the purchase-driven
    // case study charts.
    assert!(
        veng >= ueng,
        "engagement ranking: vetted {veng} vs unvetted {ueng}"
    );
    assert!(wof_eng > 0, "WoF must chart under engagement ranking");
    // Ablated: revenue no longer moves the grossing chart, so the
    // purchase campaign stops charting (or barely charts).
    assert!(
        wof_inst < wof_eng,
        "install ranking must blunt purchase-driven charting: {wof_inst} vs {wof_eng}"
    );
}

/// Strict enforcement removes far more installs than the calibrated
/// lax default — §5.2's "limited effectiveness" is a dial, not a law.
#[test]
fn ablation_enforcement_aggressiveness() {
    let run = |enforcement: EnforcementConfig| {
        let mut cfg = WorldConfig::small(811);
        cfg.enforcement = enforcement;
        cfg.monitoring_days = 20;
        cfg.crawl_cadence_days = 4;
        let world = World::build(cfg).expect("build");
        world.run_wild_study().expect("wild").enforcement_removed
    };
    let none = run(EnforcementConfig::disabled());
    let lax = run(EnforcementConfig::default());
    let strict = run(EnforcementConfig::strict());
    assert_eq!(none, 0);
    assert!(strict > lax.max(1) * 10, "strict {strict} vs lax {lax}");
}

/// Fewer vantage points lose geo-targeted offers (§4.1 ran milkers
/// from eight countries for coverage).
#[test]
fn ablation_vantage_points_control_geo_coverage() {
    let run = |countries: Vec<Country>| {
        let mut cfg = WorldConfig::small(812);
        cfg.milk_countries = countries;
        let world = World::build(cfg).expect("build");
        let artifacts = world.run_wild_study().expect("wild");
        artifacts
            .dataset
            .unique_offers()
            .into_iter()
            .map(|o| (o.iip, o.raw.offer_key))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    };
    // Note: both runs use the same seed, so the same geo-targeted
    // offers exist; only the vantage set differs.
    let eight = run(Country::VANTAGE_POINTS.to_vec());
    let one = run(vec![Country::Us]);
    assert!(
        eight > one,
        "eight vantage points ({eight}) must out-cover one ({one})"
    );
}

/// Companion (non-incentivized) marketing is what moves the install
/// bins of big vetted-platform apps — the §4.3 confound ("we cannot
/// eliminate the possibility that these increases are caused by other
/// simultaneous advertising"). With it disabled, the vetted Table 5
/// increase rate collapses, while the unvetted rate — driven by the
/// purchased installs themselves crossing the low bins of tiny apps —
/// barely changes.
#[test]
fn ablation_companion_marketing_drives_vetted_bin_increases() {
    let run = |companion: bool| {
        let mut cfg = WorldConfig::small(813);
        cfg.companion_marketing = companion;
        let world = World::build(cfg).expect("build");
        let artifacts = world.run_wild_study().expect("wild");
        let t5 = Table5::run(&world, &artifacts);
        (t5.vetted.rate(), t5.unvetted.rate())
    };
    let (vetted_on, unvetted_on) = run(true);
    let (vetted_off, unvetted_off) = run(false);
    assert!(
        vetted_off < vetted_on * 0.65,
        "vetted increases must collapse without companion marketing: \
         {vetted_off:.3} vs {vetted_on:.3}"
    );
    assert!(
        unvetted_off > unvetted_on / 2.0,
        "unvetted increases are purchase-driven and must survive: \
         {unvetted_off:.3} vs {unvetted_on:.3}"
    );
    assert!(
        unvetted_off > vetted_off,
        "without the confound, only the purchase-driven effect remains"
    );
}
