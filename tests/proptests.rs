//! Property-based tests over the core data structures and wire
//! formats: round-trips, exactness invariants, and parser robustness.

use iiscope::subsystems::netsim::{encode_frame, FrameDecoder};
use iiscope::subsystems::playstore::InstallBin;
use iiscope::subsystems::types::{rng as irng, SeedFork, Usd};
use iiscope::subsystems::wire::http::{Request, Response};
use iiscope::subsystems::wire::tls::{open_records, seal_records, RecordType};
use iiscope::subsystems::wire::Json;
use proptest::prelude::*;

/// Arbitrary JSON value generator (bounded depth).
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::Int),
        // Finite floats only: JSON has no NaN/Inf.
        (-1e15f64..1e15).prop_map(Json::Float),
        "[a-zA-Z0-9 _\\-\\.\"\\\\/\u{00e9}\u{20ac}]{0,20}".prop_map(Json::str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::arr),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..6)
                .prop_map(|m| Json::Object(m.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn json_round_trips(value in arb_json()) {
        let compact = value.to_string();
        let reparsed = Json::parse(&compact).expect("compact reparse");
        prop_assert!(json_eq(&value, &reparsed), "{compact}");
        let pretty = value.pretty();
        let reparsed = Json::parse(&pretty).expect("pretty reparse");
        prop_assert!(json_eq(&value, &reparsed));
    }

    #[test]
    fn json_parser_never_panics(input in "\\PC{0,200}") {
        let _ = Json::parse(&input);
    }

    #[test]
    fn usd_display_parse_round_trips(micros in 0i64..10_000_000_000) {
        let usd = Usd::from_micros(micros);
        let text = usd.to_string();
        prop_assert_eq!(Usd::parse(&text).unwrap(), usd, "{}", text);
    }

    #[test]
    fn usd_split_is_exact(micros in 0i64..1_000_000_000, pct in 0u8..=100) {
        let total = Usd::from_micros(micros);
        let (share, rest) = total.split_percent(pct);
        prop_assert_eq!(share + rest, total);
        prop_assert!(!share.is_negative());
        prop_assert!(!rest.is_negative());
    }

    #[test]
    fn frames_survive_arbitrary_chunking(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 1..6),
        chunk in 1usize..64,
    ) {
        let mut wire = bytes::BytesMut::new();
        for p in &payloads {
            encode_frame(&mut wire, p);
        }
        let mut dec = FrameDecoder::new();
        for c in wire.chunks(chunk) {
            dec.extend(c);
        }
        let frames = dec.drain_frames().unwrap();
        prop_assert_eq!(frames.len(), payloads.len());
        for (f, p) in frames.iter().zip(&payloads) {
            prop_assert_eq!(f.as_ref(), &p[..]);
        }
    }

    #[test]
    fn tls_records_round_trip(key in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..5000)) {
        let mut seq = 0;
        let wire = seal_records(key, &mut seq, RecordType::AppData, &payload);
        let mut recv = 0;
        prop_assert_eq!(open_records(key, &mut recv, &wire).unwrap(), payload);
        prop_assert_eq!(seq, recv);
    }

    #[test]
    fn tls_single_bitflip_always_detected(
        key in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..200),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut seq = 0;
        // Sealed records come back as shared `Bytes`; copy out to a
        // mutable buffer for tampering.
        let mut wire = seal_records(key.max(1), &mut seq, RecordType::AppData, &payload).to_vec();
        // Flip one bit in the body (skip the 3-byte header so the
        // record still frames — header corruption is detected as a
        // framing error instead).
        let idx = 3 + flip_byte.index(wire.len() - 3);
        wire[idx] ^= 1 << flip_bit;
        let mut recv = 0;
        prop_assert!(open_records(key.max(1), &mut recv, &wire).is_err());
    }

    #[test]
    fn http_request_round_trips(
        target in "/[a-z0-9/\\-_]{0,30}",
        body in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let req = Request::post(target.clone(), body.clone());
        let wire = req.encode();
        let (parsed, used) = Request::parse(&wire).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(parsed.target, target);
        prop_assert_eq!(parsed.body, body);
    }

    #[test]
    fn http_response_parser_never_panics(input in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = Response::parse(&input);
        let _ = Request::parse(&input);
    }

    #[test]
    fn install_bins_are_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(InstallBin::for_count(lo) <= InstallBin::for_count(hi));
        prop_assert!(InstallBin::for_count(a).lower_bound() <= a);
    }

    #[test]
    fn seed_fork_paths_are_stable_and_distinct(label in "[a-z]{1,12}", other in "[A-Z]{1,12}") {
        let root = SeedFork::new(99);
        prop_assert_eq!(root.fork(&label).seed(), root.fork(&label).seed());
        prop_assert_ne!(root.fork(&label).seed(), root.fork(&other).seed());
    }

    #[test]
    fn weighted_index_stays_in_bounds(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in any::<u64>()) {
        let mut rng = SeedFork::new(seed).rng();
        if let Some(i) = irng::weighted_index(&mut rng, &weights) {
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0);
        } else {
            prop_assert!(weights.iter().all(|w| *w <= 0.0));
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming scanner vs the tree-building reference parser.
//
// `JsonScanner` is an independent reimplementation of the grammar (it
// shares no lexer with `Json::parse`), so agreement here is meaningful:
// both parsers must accept the same documents, build the same trees,
// and reject the same garbage with the *same* error text and offset.
// ---------------------------------------------------------------------------

use iiscope::subsystems::monitor::parsers::{parse_wall, parse_wall_streaming, parse_wall_tree};
use iiscope::subsystems::wire::json::ParseError;
use iiscope::subsystems::wire::JsonScanner;

/// Parses one document with the streaming scanner, including the
/// trailing-garbage check (which fires on the event pull *after* the
/// document completes).
fn scan_parse(input: &str) -> Result<Json, ParseError> {
    let mut sc = JsonScanner::new(input);
    let value = sc.parse_value()?;
    match sc.next_event()? {
        None => Ok(value),
        Some(ev) => panic!("event {ev:?} after a complete document"),
    }
}

/// Longest prefix of `s` up to `idx` that ends on a char boundary.
fn truncate_at_char(s: &str, idx: &prop::sample::Index) -> usize {
    if s.is_empty() {
        return 0;
    }
    let mut cut = idx.index(s.len() + 1).min(s.len());
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

/// A structurally valid Fyber-dialect wall page with fuzzed field
/// values (the schema reader must cope with any id/title/payout).
fn arb_fyber_wall() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            any::<i64>(),
            "[a-zA-Z \"\\\\]{0,12}",
            -1e6f64..1e6,
            "[a-z\\.]{1,15}",
        ),
        0..8,
    )
    .prop_map(|offers| {
        let arr: Vec<Json> = offers
            .into_iter()
            .map(|(id, title, payout, pkg)| {
                Json::obj([
                    ("offer_id", Json::Int(id)),
                    ("title", Json::str(title)),
                    ("payout_usd", Json::Float(payout)),
                    ("package", Json::str(pkg.clone())),
                    (
                        "play_url",
                        Json::str(format!("https://play.iiscope/store/apps/details?id={pkg}")),
                    ),
                ])
            })
            .collect();
        Json::obj([("ofw", Json::obj([("offers", Json::Array(arr))]))]).to_string()
    })
}

proptest! {
    /// Round-tripped documents: the scanner rebuilds exactly the tree
    /// the reference parser builds, compact or pretty.
    #[test]
    fn scanner_matches_reference_on_round_trips(value in arb_json()) {
        for text in [value.to_string(), value.pretty()] {
            let reference = Json::parse(&text).expect("reference parse");
            let streamed = scan_parse(&text).expect("scanner parse");
            prop_assert_eq!(&streamed, &reference, "{}", text);
        }
    }

    /// Adversarial input: on *any* string the two parsers agree on
    /// Ok-ness, agree on the value, and report bit-identical errors
    /// (message and byte offset) — and neither panics.
    #[test]
    fn scanner_matches_reference_on_arbitrary_input(input in "\\PC{0,200}") {
        prop_assert_eq!(scan_parse(&input), Json::parse(&input), "{:?}", input);
    }

    /// The depth cap is honored identically: deep-nested bodies are
    /// rejected cleanly by both parsers, shallow ones accepted by both.
    #[test]
    fn scanner_depth_cap_matches_reference(depth in 1usize..300) {
        let input = "[".repeat(depth) + &"]".repeat(depth);
        let reference = Json::parse(&input);
        prop_assert_eq!(&scan_parse(&input), &reference);
        if depth > iiscope::subsystems::wire::json::MAX_DEPTH + 1 {
            prop_assert!(reference.is_err(), "depth {depth} must trip the cap");
        }
        // Truncated deep nesting (all-open, no close) errors cleanly too.
        let open_only = "[".repeat(depth);
        prop_assert_eq!(scan_parse(&open_only), Json::parse(&open_only));
    }

    /// The schema-directed streaming wall parser against the tree
    /// reference, over valid pages, truncations of valid pages, and
    /// arbitrary garbage, for every IIP dialect:
    ///   * the public `parse_wall` (streaming + fallback) is
    ///     bit-identical to `parse_wall_tree` — values and error text;
    ///   * whenever the pure streaming path succeeds it matches the
    ///     tree result (the fallback never masks a divergence);
    ///   * nothing panics.
    #[test]
    fn wall_parsers_agree_everywhere(
        iip_idx in 0usize..IipId::ALL.len(),
        body in prop_oneof![
            arb_fyber_wall(),
            arb_json().prop_map(|v| v.to_string()),
            "\\PC{0,120}",
        ],
        cut in any::<prop::sample::Index>(),
    ) {
        let iip = IipId::ALL[iip_idx];
        let cut = truncate_at_char(&body, &cut);
        for s in [body.as_str(), &body[..cut]] {
            let fast = parse_wall(iip, s);
            let reference = parse_wall_tree(iip, s);
            match (&fast, &reference) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{:?}", s),
                (Err(x), Err(y)) => {
                    prop_assert_eq!(x.to_string(), y.to_string(), "{:?}", s)
                }
                _ => prop_assert!(
                    false,
                    "fast path and reference disagree on Ok-ness for {s:?}: {fast:?} vs {reference:?}"
                ),
            }
            if let Ok(page) = parse_wall_streaming(iip, s) {
                let tree = reference.expect("streaming Ok implies tree Ok");
                prop_assert_eq!(page, tree, "{:?}", s);
            }
        }
    }
}

/// Structural equality that treats Int(n) and Float(n.0) as the same
/// number (the serializer may print either form for round floats).
fn json_eq(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Object(x), Json::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && json_eq(va, vb))
        }
        (Json::Array(x), Json::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y.iter()).all(|(va, vb)| json_eq(va, vb))
        }
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Some(fx), Some(fy)) => fx == fy,
            _ => x == y,
        },
    }
}

// ---------------------------------------------------------------------------
// CSV export: RFC-4180 round-trip through an independent parser.
// ---------------------------------------------------------------------------

/// Minimal RFC-4180 parser used only to *check* the exporter: handles
/// quoted fields, doubled quotes, and embedded commas/newlines/CRs.
fn parse_csv(input: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => row.push(std::mem::take(&mut field)),
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {} // exporter never emits bare CR outside quotes
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

use iiscope::subsystems::monitor::crawler::ProfileSnapshot;
use iiscope::subsystems::monitor::export::{charts_csv, offers_csv, profiles_csv};
use iiscope::subsystems::monitor::parsers::{RawOffer, RewardValue, ScrapedOffer};
use iiscope::subsystems::monitor::Dataset;
use iiscope::subsystems::playstore::engagement::{EngagementLedger, InstallSignals};
use iiscope::subsystems::types::{Country, IipId, SimTime};

proptest! {
    /// Every adversarial string placed in a CSV field must come back
    /// byte-identical through an independent RFC-4180 parser — commas,
    /// quotes, and embedded newlines included.
    #[test]
    fn csv_export_round_trips_adversarial_fields(
        description in "[a-zA-Z0-9 ,\"\n\r\\.\\-]{0,40}",
        affiliate in "[a-z\\.,\"]{1,20}",
        title in "[a-zA-Z ,\"]{1,30}",
    ) {
        let mut ds = Dataset::new();
        ds.add_offers([ScrapedOffer {
            iip: IipId::Fyber,
            raw: RawOffer {
                offer_key: 7,
                description: description.clone(),
                reward: RewardValue::Usd(0.5),
                package: "com.x.y".into(),
                store_url: "https://play.iiscope/x?id=com.x.y".into(),
            },
            seen_at: SimTime::from_days(2),
            affiliate: affiliate.clone(),
            vantage: Country::Us,
        }]);
        ds.add_profile(ProfileSnapshot {
            day: 2,
            package: "com.x.y".into(),
            title: title.clone(),
            genre_id: "TOOLS".into(),
            released_day: 1,
            min_installs: 10,
            developer_id: 1,
            developer_name: "dev".into(),
            developer_country: "US".into(),
            developer_email: "d@x".into(),
            developer_website: String::new(),
            rating: 4.25,
            rating_count: 12,
        });

        let offers = parse_csv(&offers_csv(&ds));
        prop_assert_eq!(offers.len(), 2, "header + 1 data row");
        prop_assert_eq!(offers[0].len(), offers[1].len(), "rectangular");
        prop_assert_eq!(offers[1][4].as_str(), affiliate.as_str());
        prop_assert_eq!(offers[1][6].as_str(), description.as_str());

        let profiles = parse_csv(&profiles_csv(&ds));
        prop_assert_eq!(profiles.len(), 2);
        prop_assert_eq!(profiles[0].len(), profiles[1].len());
        prop_assert_eq!(profiles[1][2].as_str(), title.as_str());
        prop_assert_eq!(profiles[1][10].as_str(), "4.2", "rating printed to 1 decimal");

        let charts = parse_csv(&charts_csv(&ds));
        prop_assert_eq!(charts.len(), 1, "header only — no chart snapshots added");
    }

    /// The ledger's accounting identity: gross = public + filtered, no
    /// matter how installs are recorded (per-event or bulk) or how many
    /// enforcement passes run.
    #[test]
    fn ledger_accounting_identity_holds(
        events in prop::collection::vec((0u64..30, any::<bool>(), any::<bool>()), 0..40),
        bulk in 0u64..1000,
        filter_n in 0u64..60,
    ) {
        let mut l = EngagementLedger::new();
        let mut emulators = 0u64;
        for (day, emulator, rooted) in &events {
            let mut s = InstallSignals::clean(0x0A0B0C00);
            s.emulator = *emulator;
            s.rooted = *rooted;
            if *emulator { emulators += 1; }
            l.record_install(SimTime::from_days(*day), s, "tag");
        }
        l.record_installs_bulk(SimTime::from_days(0), bulk);
        let gross = l.gross_installs();
        prop_assert_eq!(gross, events.len() as u64 + bulk);

        let removed = l.filter_installs(filter_n, |e| e.signals.emulator);
        prop_assert!(removed <= filter_n);
        prop_assert_eq!(removed, filter_n.min(emulators), "removes exactly min(n, matching)");
        prop_assert_eq!(l.gross_installs(), gross, "filtering never changes gross");
        prop_assert_eq!(l.public_installs() + l.filtered_installs(), gross);

        // A second identical pass finds only the leftovers.
        let second = l.filter_installs(filter_n, |e| e.signals.emulator);
        prop_assert_eq!(removed + second, (2 * filter_n).min(emulators));

        // The all-days trailing window agrees with the event count.
        let w = l.trailing(SimTime::from_days(100), 100);
        prop_assert_eq!(w.installs, gross, "day buckets count every install once");
    }

    /// Ratings clamp to 1..=5 stars, so the average always lies in
    /// [1, 5] and the count matches the number of recordings.
    #[test]
    fn rating_average_stays_in_star_range(stars in prop::collection::vec(0u8..=9, 1..50)) {
        let mut l = EngagementLedger::new();
        for s in &stars {
            l.record_rating(*s);
        }
        prop_assert_eq!(l.rating_count(), stars.len() as u64);
        let avg = l.average_rating().expect("ratings exist");
        prop_assert!((1.0..=5.0).contains(&avg), "average {avg} outside star range");
    }
}

use iiscope::subsystems::netsim::{DropReason, FaultPlan, GilbertElliott, OutageWindow, Verdict};
use iiscope::subsystems::types::{SimDuration, SimTime as ChaosTime};

proptest! {
    /// The Gilbert–Elliott constructor must clamp arbitrary rates into
    /// [0, 1] — a plan built from hostile inputs is always a valid
    /// probability model.
    #[test]
    fn gilbert_elliott_rates_always_clamp(
        p_enter in -3.0f64..4.0,
        p_exit in -3.0f64..4.0,
        loss_good in -3.0f64..4.0,
        loss_bad in -3.0f64..4.0,
    ) {
        let ge = GilbertElliott::new(p_enter, p_exit, loss_good, loss_bad);
        for rate in [ge.p_enter(), ge.p_exit(), ge.loss_good(), ge.loss_bad()] {
            prop_assert!((0.0..=1.0).contains(&rate), "rate {rate} escaped [0,1]");
        }
    }

    /// Inside a scheduled outage window *nothing* is delivered — no
    /// seed, payload size or competing fault knob may sneak one
    /// through.
    #[test]
    fn outage_windows_never_deliver(
        seed in any::<u64>(),
        offset_secs in 0u64..86_400,
        len in 0usize..64,
    ) {
        let from = ChaosTime::from_days(10);
        let until = ChaosTime::from_days(11);
        let mut plan = FaultPlan::lossy(0.3, 0.2)
            .with_stall(0.2)
            .with_outage(OutageWindow::new(from, until));
        let mut rng = SeedFork::new(seed).rng();
        let mut payload = bytes::BytesMut::new();
        payload.extend_from_slice(&vec![7u8; len]);
        let now = from + SimDuration::from_secs(offset_secs);
        prop_assert_eq!(
            plan.apply(&mut rng, now, &mut payload),
            Verdict::Dropped(DropReason::Outage)
        );
    }

    /// Determinism root: the same `(seed, plan)` must produce the same
    /// verdict sequence, whatever mix of fault features is armed.
    #[test]
    fn same_seed_and_plan_give_identical_verdicts(
        seed in any::<u64>(),
        drop_chance in 0.0f64..0.5,
        corrupt_chance in 0.0f64..0.5,
        stall_chance in 0.0f64..0.3,
    ) {
        let run = || -> Vec<Verdict> {
            let mut plan = FaultPlan::lossy(drop_chance, corrupt_chance)
                .with_stall(stall_chance)
                .with_burst(GilbertElliott::new(0.1, 0.3, 0.01, 0.5))
                .with_truncation(0.1)
                .with_garbage(0.05);
            let mut rng = SeedFork::new(seed).rng();
            (0..50u64)
                .map(|i| {
                    let mut payload = bytes::BytesMut::new();
                    payload.extend_from_slice(&[i as u8; 16]);
                    plan.apply(&mut rng, ChaosTime::from_secs(i), &mut payload)
                })
                .collect()
        };
        prop_assert_eq!(run(), run());
    }
}

// Symbol interner: round-trip, dedup, and stable first-insertion
// numbering — the invariants the seed-42 oracle leans on when the
// dataset joins on `Sym` instead of `String`.
proptest! {
    /// `resolve(intern(s)) == s` for every string in an arbitrary
    /// insertion multiset, and re-interning is the identity on `Sym`.
    #[test]
    fn interner_round_trips_and_dedups(
        strings in prop::collection::vec("[a-z0-9\\.]{0,24}", 0..64),
    ) {
        use iiscope::subsystems::types::Interner;
        let mut interner = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, &sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(sym), s.as_str());
            prop_assert_eq!(interner.intern(s), sym);
            prop_assert_eq!(interner.get(s), Some(sym));
        }
        // One symbol per distinct string, nothing more.
        let distinct: std::collections::BTreeSet<&str> =
            strings.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(interner.len(), distinct.len());
        // The slab holds exactly the distinct strings.
        prop_assert_eq!(
            interner.slab_bytes(),
            distinct.iter().map(|s| s.len()).sum::<usize>()
        );
    }

    /// Numbering is the first-insertion rank — a function of the
    /// first-occurrence sequence alone, never of capacity, duplicate
    /// pattern, or hash layout.
    #[test]
    fn interner_numbering_is_first_insertion_rank(
        strings in prop::collection::vec("[a-z]{0,12}", 0..64),
    ) {
        use iiscope::subsystems::types::Interner;
        let mut interner = Interner::new();
        for s in &strings {
            interner.intern(s);
        }
        // Expected numbering: order-preserving dedup of the input.
        let mut first_occurrence: Vec<&str> = Vec::new();
        for s in &strings {
            if !first_occurrence.contains(&s.as_str()) {
                first_occurrence.push(s);
            }
        }
        for (rank, s) in first_occurrence.iter().enumerate() {
            prop_assert_eq!(interner.get(s).map(|sym| sym.index()), Some(rank));
        }
        // Replaying only the first occurrences (no duplicates, and a
        // different starting capacity) reproduces the same table.
        let mut replay = Interner::with_capacity(first_occurrence.len(), 8);
        for s in &first_occurrence {
            replay.intern(s);
        }
        prop_assert_eq!(&interner, &replay);
        let via_iter: Vec<(u32, &str)> =
            interner.iter().map(|(sym, s)| (sym.0, s)).collect();
        let expected: Vec<(u32, &str)> = first_occurrence
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        prop_assert_eq!(via_iter, expected);
    }
}

// ---------------------------------------------------------------------------
// Snapshot frame codec (checkpointing): round-trips, corruption
// detection, decoding totality.

use iiscope::subsystems::types::frame::{read_all, FrameReader, FrameWriter};

/// Arbitrary record payloads for a frame file (including empty records
/// and an empty file).
fn arb_records() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..12)
}

proptest! {
    /// Any sequence of payloads round-trips through the frame file
    /// byte-exactly, in order.
    #[test]
    fn frame_codec_round_trips(records in arb_records()) {
        let mut w = FrameWriter::new();
        for r in &records {
            w.record(r);
        }
        let bytes = w.finish();
        let back = read_all(&bytes).expect("clean file decodes");
        prop_assert_eq!(back.len(), records.len());
        for (got, want) in back.iter().zip(&records) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    /// Flipping any single bit anywhere in a frame file is detected:
    /// decoding returns `Err`, never wrong data, never a panic.
    #[test]
    fn frame_codec_detects_any_single_bit_flip(
        records in arb_records(),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut w = FrameWriter::new();
        for r in &records {
            w.record(r);
        }
        let mut bytes = w.finish();
        let at = pos.index(bytes.len());
        bytes[at] ^= 1 << bit;
        prop_assert!(
            read_all(&bytes).is_err(),
            "bit {bit} of byte {at} flipped undetected"
        );
    }

    /// Truncating a frame file at any point (torn write) is detected.
    #[test]
    fn frame_codec_detects_any_truncation(
        records in arb_records(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut w = FrameWriter::new();
        for r in &records {
            w.record(r);
        }
        let bytes = w.finish();
        let at = cut.index(bytes.len()); // 0..len: always a strict prefix
        prop_assert!(read_all(&bytes[..at]).is_err(), "cut at {at} undetected");
    }

    /// Decoding adversarial garbage is total: every outcome is an
    /// orderly `Err` (or a valid decode), never a panic.
    #[test]
    fn frame_codec_decoding_is_total(input in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = read_all(&input);
        let mut reader = match FrameReader::new(&input) {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        while let Ok(Some(_)) = reader.next_record() {}
    }
}
