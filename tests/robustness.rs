//! Robustness: the measurement pipeline must survive an imperfect
//! network (drops, bursts, outages, stalls, corruption, truncation,
//! slow links), because every hop — telemetry uploads, proxied
//! milking, crawls — crosses the fault-injected substrate. Dropped
//! exchanges surface as retries; corrupted TLS records surface as MAC
//! failures and are retried as transport errors; outage windows and
//! stalls exhaust the retry budget and are absorbed as missing data
//! points. Results must remain *identical in kind* (same experiments
//! computable), not byte-identical.

use iiscope::experiments::Table3;
use iiscope::subsystems::netsim::{FaultPlan, GilbertElliott, OutageWindow};
use iiscope::subsystems::types::time::study;
use iiscope::subsystems::types::SimDuration;
use iiscope::{World, WorldConfig};

fn small_quick(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.monitoring_days = 16;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 40;
    cfg.baseline_apps = 15;
    cfg.honey_purchase = 60;
    cfg
}

/// An even smaller world for the scenario matrix below — one fault
/// family per test keeps the suite wide, so each world stays tiny.
fn tiny_quick(seed: u64) -> WorldConfig {
    let mut cfg = small_quick(seed);
    cfg.monitoring_days = 8;
    cfg.advertised_apps = 24;
    cfg.baseline_apps = 8;
    cfg.honey_purchase = 40;
    cfg
}

#[test]
fn pipeline_survives_a_lossy_network() {
    let world = World::build(small_quick(4_242)).expect("build");
    // 2% drop + 0.5% corruption on every link, applied to *new*
    // connections from here on (the world build itself ran clean).
    world.net.set_default_fault(FaultPlan::lossy(0.02, 0.005));

    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study under loss");
    let delivered: u64 = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(delivered >= 180, "delivered {delivered}");
    // Telemetry still overwhelmingly arrives (the uploader retries).
    assert!(
        world.collector.len() as u64 >= delivered / 2,
        "telemetry too thin: {} records for {delivered} installs",
        world.collector.len()
    );

    let artifacts = world.run_wild_study().expect("wild study under loss");
    assert!(
        artifacts.dataset.offers().len() > 0,
        "milking found nothing under loss"
    );
    let t3 = Table3::run(&world, &artifacts);
    assert!(t3.total_offers > 10, "unique offers {}", t3.total_offers);
}

#[test]
fn heavy_loss_degrades_but_does_not_wedge() {
    let world = World::build(small_quick(4_243)).expect("build");
    world.net.set_default_fault(FaultPlan::lossy(0.12, 0.02));
    // Even at 12% loss per exchange the study completes; individual
    // uploads may fail permanently (bounded retries), which the driver
    // tolerates per design.
    let result = world.run_wild_study();
    match result {
        Ok(artifacts) => {
            // Fine if thinner than the clean run.
            assert!(artifacts.dataset.profiles().len() < 100_000);
        }
        Err(e) => panic!("wild study must not error under loss: {e}"),
    }
}

#[test]
fn bursty_loss_is_absorbed_by_retries() {
    let world = World::build(tiny_quick(4_244)).expect("build");
    // Gilbert–Elliott: near-perfect good state, 60%-loss bursts that
    // last ~3 deliveries. Correlated losses hit one exchange's whole
    // tail, so this stresses the retry layer harder than i.i.d. loss
    // of the same average rate.
    world.net.set_default_fault(
        FaultPlan::perfect().with_burst(GilbertElliott::new(0.05, 0.30, 0.005, 0.60)),
    );
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study under bursts");
    let delivered: u64 = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(delivered > 0, "bursts starved every campaign");
    assert!(
        world.collector.distinct_installs() > 0,
        "no telemetry survived the bursts"
    );
}

#[test]
fn partition_during_a_crawl_day_leaves_a_gap_not_a_corpse() {
    // Clean reference: crawl days 0, 4 and 8 all produce chart
    // snapshots.
    let clean = World::build(tiny_quick(4_245)).expect("build");
    let clean_arts = clean.run_wild_study().expect("clean wild study");
    let clean_chart_days = clean_arts.dataset.chart_days().len();
    assert!(clean_chart_days >= 3, "{clean_chart_days}");

    // Same world, but the whole network partitions across crawl day 4
    // (an outage window is absolute sim time; every link refuses
    // delivery inside it).
    let world = World::build(tiny_quick(4_245)).expect("build");
    world
        .net
        .set_default_fault(FaultPlan::perfect().with_outage(OutageWindow::new(
            study::STUDY_START + SimDuration::from_days(4),
            study::STUDY_START + SimDuration::from_days(5),
        )));
    let arts = world.run_wild_study().expect("wild study across partition");
    assert!(
        arts.dataset.offers().len() > 0,
        "crawl days outside the window must still milk"
    );
    assert_eq!(
        arts.dataset.chart_days().len(),
        clean_chart_days - 1,
        "exactly the partitioned crawl day is missing"
    );
}

#[test]
fn stalled_endpoints_exhaust_retries_without_wedging() {
    let world = World::build(tiny_quick(4_246)).expect("build");
    // Stalls are the nastiest failure: the server *processes* the
    // request, the reply never comes, and the retry may duplicate the
    // side effect. 5% of deliveries stall.
    world
        .net
        .set_default_fault(FaultPlan::perfect().with_stall(0.05));
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study under stalls");
    let delivered: u64 = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(delivered > 0);
    let arts = world.run_wild_study().expect("wild study under stalls");
    assert!(arts.dataset.offers().len() > 0);
    // Stalled-then-retried uploads may duplicate records; distinct
    // install ids stay bounded by deliveries.
    assert!(world.collector.distinct_installs() as u64 <= delivered);
}

#[test]
fn truncated_and_garbage_walls_degrade_to_partial_pages() {
    let world = World::build(tiny_quick(4_247)).expect("build");
    // Payload-level damage below TLS: truncated records fail the MAC
    // or leave half a JSON wall; garbage payloads are noise. Both must
    // surface as retries or partial walls, never as a parser panic.
    world.net.set_default_fault(
        FaultPlan::perfect()
            .with_truncation(0.08)
            .with_garbage(0.04),
    );
    let arts = world.run_wild_study().expect("wild study under damage");
    let t3 = Table3::run(&world, &arts);
    assert!(
        t3.total_offers > 0,
        "the Table 3 pipeline must stay computable on damaged walls"
    );
}

#[test]
fn collector_outage_is_caught_up_by_later_uploads() {
    let world = World::build(tiny_quick(4_248)).expect("build");
    // The first 12 hours of the study are dark — every upload (and
    // every wall fetch) dies. Deliveries after the window report in,
    // including day-2 returns from installs that happened in the dark.
    world
        .net
        .set_default_fault(FaultPlan::perfect().with_outage(OutageWindow::new(
            study::STUDY_START,
            study::STUDY_START + SimDuration::from_hours(12),
        )));
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study across collector outage");
    let delivered: u64 = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(delivered > 0, "post-outage deliveries must proceed");
    assert!(
        world.collector.distinct_installs() > 0,
        "telemetry after the window must land"
    );
}

#[test]
fn parallel_fan_out_matches_sequential_under_faults() {
    let run = |parallelism: usize| {
        let mut cfg = tiny_quick(4_249);
        cfg.parallelism = parallelism;
        let world = World::build(cfg).expect("build");
        world.net.set_default_fault(FaultPlan::lossy(0.06, 0.01));
        world.run_wild_study().expect("faulty wild study")
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.offer_observations, par.offer_observations);
    assert_eq!(
        format!("{:?}", seq.dataset.offers().collect::<Vec<_>>()),
        format!("{:?}", par.dataset.offers().collect::<Vec<_>>()),
        "fault randomness must be a function of each connection's \
         lineage, not of worker scheduling"
    );
    assert_eq!(
        format!("{:?}", seq.dataset.profiles()),
        format!("{:?}", par.dataset.profiles()),
    );
    assert_eq!(seq.apks, par.apks);
}

#[test]
fn slow_links_cost_connection_local_time_only() {
    let world = World::build(tiny_quick(4_250)).expect("build");
    // A 50 kB/s bandwidth cap plus latency on every link: transfers
    // take sim-visible time, but only on the connection's own skewed
    // clock. The shared clock must end exactly on schedule.
    world.net.set_default_fault(
        FaultPlan::perfect()
            .with_bandwidth(50_000)
            .with_latency(SimDuration::from_secs(1), SimDuration::ZERO),
    );
    let arts = world.run_wild_study().expect("wild study on slow links");
    assert!(arts.dataset.offers().len() > 0);
    assert_eq!(
        world.net.clock().now(),
        world.study_end(),
        "faults must never advance the shared clock past the schedule"
    );
}
