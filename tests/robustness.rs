//! Robustness: the measurement pipeline must survive an imperfect
//! network (drops and corruption), because every hop — telemetry
//! uploads, proxied milking, crawls — crosses the fault-injected
//! substrate. Dropped exchanges surface as retries; corrupted TLS
//! records surface as MAC failures and are retried as transport
//! errors. Results must remain *identical in kind* (same experiments
//! computable), not byte-identical.

use iiscope::experiments::Table3;
use iiscope::subsystems::netsim::FaultPlan;
use iiscope::{World, WorldConfig};

fn small_quick(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.monitoring_days = 16;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 40;
    cfg.baseline_apps = 15;
    cfg.honey_purchase = 60;
    cfg
}

#[test]
fn pipeline_survives_a_lossy_network() {
    let world = World::build(small_quick(4_242)).expect("build");
    // 2% drop + 0.5% corruption on every link, applied to *new*
    // connections from here on (the world build itself ran clean).
    world.net.set_default_fault(FaultPlan::lossy(0.02, 0.005));

    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study under loss");
    let delivered: u64 = honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(delivered >= 180, "delivered {delivered}");
    // Telemetry still overwhelmingly arrives (the uploader retries).
    assert!(
        world.collector.len() as u64 >= delivered / 2,
        "telemetry too thin: {} records for {delivered} installs",
        world.collector.len()
    );

    let artifacts = world.run_wild_study().expect("wild study under loss");
    assert!(
        !artifacts.dataset.offers().is_empty(),
        "milking found nothing under loss"
    );
    let t3 = Table3::run(&world, &artifacts);
    assert!(t3.total_offers > 10, "unique offers {}", t3.total_offers);
}

#[test]
fn heavy_loss_degrades_but_does_not_wedge() {
    let world = World::build(small_quick(4_243)).expect("build");
    world.net.set_default_fault(FaultPlan::lossy(0.12, 0.02));
    // Even at 12% loss per exchange the study completes; individual
    // uploads may fail permanently (bounded retries), which the driver
    // tolerates per design.
    let result = world.run_wild_study();
    match result {
        Ok(artifacts) => {
            // Fine if thinner than the clean run.
            assert!(artifacts.dataset.profiles().len() < 100_000);
        }
        Err(e) => panic!("wild study must not error under loss: {e}"),
    }
}
