//! The serve hot path and its measurement harness: the day-versioned
//! response cache must be byte-invisible (every cached response
//! identical to a fresh render, at every route, under version bumps
//! at arbitrary points), and the `iiscope-load` workload generator
//! must measure a real server end to end — probe, ramp stages,
//! closed-loop ceiling, tallies, and the baseline gate.

use iiscope::servefront::{WorldRouter, WorldVersion, CACHE_CAP};
use iiscope::subsystems::honeyapp::HONEY_PACKAGE;
use iiscope::subsystems::load::{self, LoadSpec, LoadStage, MixEntry};
use iiscope::subsystems::netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
use iiscope::subsystems::playstore::frontend::StoreFrontend;
use iiscope::subsystems::serve::{ServeConfig, Server};
use iiscope::subsystems::types::{Country, IipId, SeedFork};
use iiscope::subsystems::wire::http::RequestCtx;
use iiscope::subsystems::wire::{Handler, Request};
use iiscope::{World, WorldConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const AFFILIATE: &str = "com.mobvantage.cashforapps";

/// One small world shared by every test in this binary (building it
/// dominates the suite's wall time; routers and caches are per-test).
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = WorldConfig::small(7);
        cfg.advertised_apps = 8;
        cfg.baseline_apps = 4;
        World::build(cfg).unwrap()
    })
}

fn ctx_at(world: &World, country: Country) -> RequestCtx {
    RequestCtx {
        peer: PeerInfo {
            addr: HostAddr {
                ip: std::net::Ipv4Addr::new(203, 0, 113, 9),
                asn: AsnId(64512),
                asn_kind: AsnKind::Eyeball,
                country,
            },
            opened_at: world.study_start(),
            link: SeedFork::new(99),
        },
        now: world.study_start(),
    }
}

/// A cached router whose version handle the test controls, so stats
/// assertions cannot be perturbed by the shared world's `day_version`.
fn private_cached_router(world: &World) -> (WorldRouter, WorldVersion) {
    let version = WorldVersion::new();
    let router = WorldRouter::new_cached(
        StoreFrontend::new(Arc::clone(&world.store)),
        world.walls.clone(),
        version.clone(),
    );
    (router, version)
}

/// Every route class the public surface serves, including the cursor
/// pagination variants and the error paths (400/403/404).
fn target_pool(world: &World) -> Vec<String> {
    let mut pool: Vec<String> = IipId::ALL
        .iter()
        .map(|iip| format!("/wall/{}/offers?affiliate={AFFILIATE}", iip.slug()))
        .collect();
    pool.extend([
        // Legacy paging and the cursor variants, on the same wall.
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&page=1"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&cursor=0&limit=3"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&cursor=3&limit=3"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&cursor=9999"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&limit=2"),
        format!("/wall/ayetstudios/offers?affiliate={AFFILIATE}&cursor=1&limit=500"),
        // Wall error paths.
        "/wall/fyber/offers".to_string(),
        "/wall/fyber/offers?affiliate=com.not.registered".to_string(),
        "/wall/nosuch/offers".to_string(),
        // Store profiles, charts, APK pulls, and their error paths.
        format!("/store/apps/details?id={HONEY_PACKAGE}"),
        format!(
            "/store/apps/details?id={}",
            world.plan.apps[0].package.as_str()
        ),
        "/store/apps/details".to_string(),
        "/store/apps/details?id=com.no.such.app".to_string(),
        "/store/charts?chart=topselling_free&n=10".to_string(),
        "/store/charts?chart=topselling_free_games&n=5".to_string(),
        "/store/charts?chart=bogus".to_string(),
        format!("/apk?id={HONEY_PACKAGE}"),
        "/apk?id=com.no.such.app".to_string(),
        "/elsewhere".to_string(),
    ]);
    pool
}

proptest! {
    /// The cache is byte-invisible: an arbitrary request sequence over
    /// every route class, from both vantage countries, with version
    /// bumps interleaved at arbitrary points, renders exactly the
    /// bytes of the uncached oracle at every step.
    #[test]
    fn cached_router_is_byte_identical_to_fresh_renders(
        steps in prop::collection::vec(
            (any::<prop::sample::Index>(), any::<bool>(), any::<u8>()),
            1..48,
        )
    ) {
        let world = world();
        let pool = target_pool(world);
        let (cached, version) = private_cached_router(world);
        let fresh = world.serve_router_uncached();
        for (idx, from_in, bump_roll) in steps {
            // ~15% of steps advance the world version mid-sequence.
            if bump_roll < 40 {
                version.bump();
            }
            let target = &pool[idx.index(pool.len())];
            let country = if from_in { Country::In } else { Country::Us };
            let ctx = ctx_at(world, country);
            let got = cached.handle(&Request::get(target.clone()), &ctx).encode();
            let oracle = fresh.handle(&Request::get(target.clone()), &ctx).encode();
            prop_assert_eq!(got, oracle, "cache diverged at {}", target);
        }
        prop_assert!(cached.cache_stats().misses() > 0);
    }
}

/// Repeats against a hot cache hit for every pool target, and a day
/// bump drops the whole map exactly once.
#[test]
fn every_route_caches_and_one_bump_invalidates_all() {
    let world = world();
    let pool = target_pool(world);
    let (router, version) = private_cached_router(world);
    let ctx = ctx_at(world, Country::Us);

    for t in &pool {
        router.handle(&Request::get(t.clone()), &ctx);
    }
    for t in &pool {
        router.handle(&Request::get(t.clone()), &ctx);
    }
    let n = pool.len() as u64;
    assert_eq!(router.cache_stats().misses(), n);
    assert_eq!(router.cache_stats().hits(), n);
    assert_eq!(router.cache_stats().invalidations(), 0);

    version.bump();
    for t in &pool {
        router.handle(&Request::get(t.clone()), &ctx);
    }
    // Every target misses again, but the map was dropped exactly once.
    assert_eq!(router.cache_stats().misses(), 2 * n);
    assert_eq!(router.cache_stats().hits(), n);
    assert_eq!(router.cache_stats().invalidations(), 1);
}

/// Cursor variants occupy distinct cache slots: each paginated view is
/// cached independently and replays its own bytes.
#[test]
fn cursor_variants_are_distinct_cache_slots() {
    let world = world();
    let (router, _version) = private_cached_router(world);
    let ctx = ctx_at(world, Country::Us);
    let variants = [
        format!("/wall/fyber/offers?affiliate={AFFILIATE}"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&cursor=0&limit=2"),
        format!("/wall/fyber/offers?affiliate={AFFILIATE}&cursor=2&limit=2"),
    ];
    let first: Vec<_> = variants
        .iter()
        .map(|t| router.handle(&Request::get(t.clone()), &ctx).encode())
        .collect();
    let second: Vec<_> = variants
        .iter()
        .map(|t| router.handle(&Request::get(t.clone()), &ctx).encode())
        .collect();
    assert_eq!(first, second);
    assert_eq!(router.cache_stats().misses(), variants.len() as u64);
    assert_eq!(router.cache_stats().hits(), variants.len() as u64);
}

/// The cap boundary: filling past `CACHE_CAP` distinct targets stops
/// retaining at exactly the cap, overflow targets still render
/// byte-identical to the uncached oracle, and a version bump drops the
/// full map in one invalidation after which it refills byte-identical.
#[test]
fn cache_cap_bounds_retention_without_bending_bytes() {
    let world = world();
    let (router, version) = private_cached_router(world);
    let fresh = world.serve_router_uncached();
    let ctx = ctx_at(world, Country::Us);

    // Distinct query strings are distinct cache keys — exactly the
    // adversarial churn the cap exists for. All 404 renders: cheap,
    // and error paths are cached like any other response.
    let over = CACHE_CAP + 64;
    let target = |i: usize| format!("/store/apps/details?id=com.nope.app{i}");
    for i in 0..over {
        router.handle(&Request::get(target(i)), &ctx);
    }
    assert_eq!(
        router.cache_len(),
        CACHE_CAP,
        "retention must stop at the cap"
    );
    assert_eq!(router.cache_stats().misses(), over as u64);
    assert_eq!(router.cache_stats().invalidations(), 0);

    // Retained and overflow targets alike match the uncached oracle.
    for i in [0, 1, CACHE_CAP - 1, CACHE_CAP, over - 1] {
        let got = router.handle(&Request::get(target(i)), &ctx).encode();
        let oracle = fresh.handle(&Request::get(target(i)), &ctx).encode();
        assert_eq!(got, oracle, "diverged at target {i}");
    }
    // The first CACHE_CAP re-probes were hits; the overflow two missed.
    assert_eq!(router.cache_stats().hits(), 3);
    assert_eq!(router.cache_stats().misses(), over as u64 + 2);

    // One bump drops everything at once, and the refill is
    // byte-identical again.
    version.bump();
    let probe = target(CACHE_CAP / 2);
    let got = router.handle(&Request::get(probe.clone()), &ctx).encode();
    assert_eq!(router.cache_stats().invalidations(), 1);
    assert_eq!(router.cache_len(), 1);
    assert_eq!(
        got,
        fresh.handle(&Request::get(probe.clone()), &ctx).encode()
    );
    let again = router.handle(&Request::get(probe), &ctx).encode();
    assert_eq!(got, again, "post-bump refill must replay its own bytes");
}

/// The harness end to end against a real server: probe validates the
/// mix, an open-loop stage paces near its target, the closed-loop
/// stage leans on the response cache, and the emitted JSON round-trips
/// through the baseline gate.
#[test]
fn load_harness_measures_a_real_server() {
    let world = world();
    let router = world.serve_router();
    let cfg = ServeConfig {
        workers: 2,
        conn_cap: 32,
        sim_now: world.study_end(),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg, router.clone()).unwrap();
    let addr = server.local_addr();

    let mix = vec![
        MixEntry {
            name: "wall:fyber".into(),
            target: format!("/wall/fyber/offers?affiliate={AFFILIATE}"),
            weight: 4,
        },
        MixEntry {
            name: "store:honey".into(),
            target: format!("/store/apps/details?id={HONEY_PACKAGE}"),
            weight: 2,
        },
        MixEntry {
            name: "apk:honey".into(),
            target: format!("/apk?id={HONEY_PACKAGE}"),
            weight: 1,
        },
    ];
    load::probe(addr, &mix).unwrap();
    // A mix with a dead target must fail the probe, not the stages.
    let mut bad = mix.clone();
    bad.push(MixEntry {
        name: "bad".into(),
        target: "/no/such/route".into(),
        weight: 1,
    });
    assert!(load::probe(addr, &bad).is_err());

    let spec = LoadSpec {
        stages: vec![
            LoadStage { qps: 200, secs: 1 },
            LoadStage { qps: 0, secs: 1 },
        ],
        conns: 2,
        mix,
        seed: 42,
    };
    let results = load::run(addr, &spec).unwrap();
    assert_eq!(results.len(), spec.stages.len());
    for r in &results {
        assert!(r.done > 0, "stage completed no requests");
        assert_eq!(r.tally.errors(), 0, "clean run must tally zero errors");
        assert_eq!(r.tally.total(), r.done);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
    }
    // The open-loop stage pulses at its schedule — it cannot overshoot
    // the target by more than scheduling jitter allows.
    assert!(
        results[0].achieved_rps <= 220.0,
        "{}",
        results[0].achieved_rps
    );
    // The closed-loop ceiling ran much hotter than the paced stage and
    // was served from the cache.
    assert!(results[1].achieved_rps > results[0].achieved_rps);
    assert!(router.cache_stats().hits() > 0);

    // BENCH_load.json round-trips through the committed-baseline gate:
    // a run compared against itself passes at zero tolerance.
    let json = load::bench_load_json("test", 42, 2, true, &spec, &results);
    let baseline = load::parse_baseline(&json).unwrap();
    let measured = load::gate(&results).unwrap();
    load::check_against_baseline(&measured, &baseline, 0.0).unwrap();

    server.stop();
    assert_eq!(server.inflight(), 0);
}
