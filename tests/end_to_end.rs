//! End-to-end integration: one world, both studies, every experiment —
//! asserting the cross-crate pipeline holds together and reproduces
//! the paper's qualitative results.

use iiscope::experiments::{
    full_report, Figure4, Figure6, Section5, Table1, Table3, Table4, Table5, Table7,
};
use iiscope::{World, WorldConfig};
use iiscope_types::IipId;
use std::sync::OnceLock;

struct Shared {
    world: World,
    honey: iiscope::HoneyStudy,
    artifacts: iiscope::WildArtifacts,
}

fn shared() -> &'static Shared {
    static CELL: OnceLock<Shared> = OnceLock::new();
    CELL.get_or_init(|| {
        let world = World::build(WorldConfig::small(40_404)).expect("build");
        let honey = world.run_honey_study(world.study_start()).expect("honey");
        let artifacts = world.run_wild_study().expect("wild");
        Shared {
            world,
            honey,
            artifacts,
        }
    })
}

#[test]
fn full_report_renders_every_artifact() {
    let s = shared();
    let report = full_report(&s.world, &s.artifacts, s.honey.clone());
    for needle in [
        "Section 3.2",
        "Table 1",
        "Table 2",
        "Table 3",
        "Table 4",
        "Table 5",
        "Table 6",
        "Table 7",
        "Table 8",
        "Figure 4",
        "Figure 5",
        "Figure 6",
        "Section 5.2",
        "Section 5.1",
        "monetization summary",
        "detector",
    ] {
        assert!(report.contains(needle), "missing {needle}");
    }
}

#[test]
fn headline_results_reproduce() {
    let s = shared();

    // Contribution 1: purchased installs raised the honey app's public
    // count from 0 past the purchase size, unimpeded.
    let total: u64 = s.honey.outcomes.iter().map(|o| o.installs_delivered).sum();
    assert!(total > s.world.cfg.honey_purchase * 3);

    // Contribution 2: the monitor found campaigns across both platform
    // classes with an activity/no-activity split.
    let t3 = Table3::run(&s.world, &s.artifacts);
    assert!(t3.share_of("Activity").unwrap() > 0.25);
    assert!(t3.share_of("No activity").unwrap() > 0.25);

    // Contribution 3: install-count increases correlate with
    // campaigns; unvetted sees the bigger multiplier (Table 5).
    let t5 = Table5::run(&s.world, &s.artifacts);
    assert!(t5.unvetted.rate() > 3.0 * t5.baseline.rate().max(0.01));

    // Contribution 3b: the funding pipeline works end to end — vetted
    // developers match Crunchbase far more often (their profiles carry
    // websites) and funded apps are found. The rate ordering itself is
    // a paper-scale property (N = 200 matched apps there vs ~20 here)
    // and is asserted by the `repro --scale paper` run in
    // EXPERIMENTS.md.
    let t7 = Table7::run(&s.world, &s.artifacts);
    assert!(t7.vetted.match_rate() > t7.unvetted.match_rate());
    assert!(
        t7.vetted.total() + t7.unvetted.total() >= 10,
        "too few matched apps"
    );

    // Contribution 4: activity-offer apps integrate more ad libraries
    // (Figure 6's 60%-vs-25% at the ≥5 cut).
    let f6 = Figure6::run(&s.world, &s.artifacts);
    let [activity, no_activity, _] = &f6.by_offer_type;
    assert!(activity.frac_ge5 > no_activity.frac_ge5);
}

#[test]
fn observed_dataset_is_consistent_with_ground_truth() {
    let s = shared();
    let ds = &s.artifacts.dataset;
    // Every observed package corresponds to a planned app.
    let planned: std::collections::BTreeSet<&str> = s
        .world
        .plan
        .apps
        .iter()
        .map(|a| a.package.as_str())
        .collect();
    for pkg in ds.advertised_packages() {
        assert!(planned.contains(pkg), "ghost package {pkg}");
    }
    // Per-IIP app counts follow the Table 4 ordering.
    let t4 = Table4::run(&s.world, &s.artifacts);
    assert!(t4.row(IipId::Fyber).apps > t4.row(IipId::AdGem).apps);
    // RankApp is all no-activity.
    assert!(t4.row(IipId::RankApp).no_activity_share > 0.99);
}

#[test]
fn world_observables_survive_the_full_pipeline() {
    let s = shared();
    // Vetting probe (Table 1) matches ground truth end to end.
    let t1 = Table1::run(&s.world);
    assert!(t1
        .rows
        .iter()
        .all(|r| r.observed_vetted == r.iip.is_vetted()));
    // Baseline histogram covers the spectrum (Figure 4).
    let f4 = Figure4::run(&s.world, &s.artifacts);
    assert!(f4.total > 0);
    // Enforcement stays rare (§5.2).
    let s5 = Section5::run(&s.world, &s.artifacts);
    assert_eq!(s5.baseline.decreased, 0);
    assert!(s5.unvetted.rate() < 0.2);
}

#[test]
fn money_flows_reconcile_across_platforms() {
    let s = shared();
    for iip in IipId::ALL {
        let settlement = s.world.platforms[&iip].settlement();
        assert_eq!(
            settlement.gross(),
            settlement.iip_revenue + settlement.affiliate_revenue + settlement.user_payouts,
            "{iip} settlement does not reconcile"
        );
    }
}
