//! Incremental-aggregates parity: the streaming report is
//! byte-identical to the batch oracle at every run shape.
//!
//! The batch report (`full_report`) re-scans the dataset per table;
//! the incremental report (`full_report_incremental`) renders the hot
//! tables from the per-day aggregate digest folded during the wild
//! study. The contract swept here:
//!
//! - {1, 8} workers × {1, 4} shards × {unbounded, 64 KiB} memory
//!   budget: the two reports are the same bytes;
//! - a run killed mid-study and resumed from its snapshot (aggregates
//!   ride snapshot section v3) still renders the same incremental
//!   bytes as a straight-through batch run;
//! - under a tight budget, the incremental render forces fewer spill
//!   reloads than the batch render — the perf claim, pinned in-suite
//!   at a reduced scale.

use iiscope::chaos::{chaos_config, CrashPlan};
use iiscope::checkpoint::load_latest;
use iiscope::experiments;
use iiscope::wildsim::{CheckpointPolicy, WildRunOptions};
use iiscope::{HoneyStudy, WildArtifacts, World, WorldConfig};
use std::path::PathBuf;

/// A unique, self-cleaning scratch directory per test case.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "iiscope-aggs-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(cfg: WorldConfig) -> (World, WildArtifacts, HoneyStudy) {
    let world = World::build(cfg).expect("build");
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study");
    let artifacts = world.run_wild_study().expect("wild study");
    (world, artifacts, honey)
}

#[test]
fn incremental_report_matches_batch_at_every_run_shape() {
    for parallelism in [1, 8] {
        for shards in [1, 4] {
            for budget in [None, Some(64 * 1024)] {
                let tag = format!(
                    "p{parallelism}-s{shards}-{}",
                    if budget.is_some() { "64k" } else { "mem" }
                );
                let mut cfg = chaos_config(9_590);
                cfg.parallelism = parallelism;
                cfg.shards = shards;
                cfg.memory_budget = budget;
                let dir = TempDir::new(&tag);
                if budget.is_some() {
                    cfg.spill_dir = Some(dir.0.clone());
                }
                let (world, artifacts, honey) = run(cfg);
                assert!(
                    artifacts.aggregates.covers(&artifacts.dataset),
                    "{tag}: wild-study aggregates must cover the final dataset"
                );
                let batch = experiments::full_report(&world, &artifacts, honey.clone());
                let incremental = experiments::full_report_incremental(&world, &artifacts, honey);
                assert_eq!(
                    incremental, batch,
                    "{tag}: incremental report differs from the batch oracle"
                );
            }
        }
    }
}

#[test]
fn incremental_report_survives_kill_and_resume() {
    // Straight-through batch baseline.
    let cfg = chaos_config(10_600);
    let (world, artifacts, honey) = run(cfg.clone());
    let straight_batch = experiments::full_report(&world, &artifacts, honey);

    // First life: checkpoint every crawl, die at day 5 (a snapshot
    // exists at day 4, mid-run with offers already folded).
    let dir = TempDir::new("kill-resume");
    {
        let world = World::build(cfg.clone()).expect("build");
        world
            .run_honey_study(world.study_start())
            .expect("honey study");
        let crashed = world.run_wild_study_with(WildRunOptions {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.0.clone(),
                every_days: cfg.crawl_cadence_days,
            }),
            resume: None,
            crash: Some(CrashPlan { kill_day: 5 }),
        });
        assert!(
            matches!(
                crashed,
                Err(iiscope::subsystems::types::Error::Interrupted(_))
            ),
            "kill-point must surface as Error::Interrupted"
        );
    }

    // Second life: the snapshot's AGGS section restores the digest,
    // and the remaining days keep folding on top of it.
    let world = World::build(cfg).expect("build");
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study");
    let scan = load_latest(&dir.0).expect("scan checkpoint dir");
    let (snap, _) = scan.snapshot.expect("a valid snapshot exists");
    assert_eq!(snap.day, 4, "newest snapshot is the day-4 one");
    let artifacts = world
        .run_wild_study_with(WildRunOptions {
            checkpoint: None,
            resume: Some(snap),
            crash: None,
        })
        .expect("resume");
    assert_eq!(artifacts.checkpoints.resumed_from_day, Some(4));
    assert!(artifacts.aggregates.covers(&artifacts.dataset));
    assert_eq!(
        experiments::full_report_incremental(&world, &artifacts, honey),
        straight_batch,
        "kill-and-resume incremental report is not byte-identical to straight batch"
    );
}

#[test]
fn incremental_render_reloads_fewer_spilled_segments() {
    // Two identical budgeted worlds, one rendered each way, so the
    // reload counters are not contaminated by the other pass. The
    // batch Figure 5 alone re-scans the chart log once per chart day;
    // the incremental render answers those lookups from the digest's
    // chart-size map without touching cold segments.
    let reloads_after = |tag: &str, incremental: bool| {
        let dir = TempDir::new(tag);
        // The chaos preset's chart log is too small to ever close a
        // segment, so crawl daily for longer under a tight budget —
        // that spills most of the chart history, which the batch
        // Figure 5 then has to decode back.
        let mut cfg = chaos_config(11_710);
        cfg.monitoring_days = 24;
        cfg.crawl_cadence_days = 1;
        cfg.advertised_apps = 25;
        cfg.baseline_apps = 10;
        cfg.memory_budget = Some(4 * 1024);
        cfg.spill_dir = Some(dir.0.clone());
        let (world, artifacts, honey) = run(cfg);
        let stats0 = artifacts.dataset.spill_stats();
        assert!(
            stats0.spilled_segments > 0,
            "a 4 KiB budget must actually spill"
        );
        let report = if incremental {
            experiments::full_report_incremental(&world, &artifacts, honey)
        } else {
            experiments::full_report(&world, &artifacts, honey)
        };
        assert!(!report.is_empty());
        artifacts.dataset.spill_stats().reloads - stats0.reloads
    };
    let batch = reloads_after("reload-batch", false);
    let incremental = reloads_after("reload-incr", true);
    assert!(
        incremental < batch,
        "incremental render must reload fewer segments than batch ({incremental} vs {batch})"
    );
}
