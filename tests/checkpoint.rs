//! Crash-safe checkpointing: the kill-point sweep and corruption
//! fallback suite.
//!
//! The hard bar these tests enforce: a run that is killed at *any* sim
//! day and re-entered through resume publishes **byte-identical**
//! output (full report + all three CSVs) to a straight-through run of
//! the same seed — at 1 worker, at 8 workers, and when the snapshot
//! was written at a different worker count than the resume. Corrupt
//! snapshots (bit flips, truncation) must be detected by the frame
//! CRC, logged, and skipped back to the last valid one — never
//! panicking, never resuming into wrong data.
//!
//! In-suite: the {first, second, mid, last-1, last} × 2-seed sweep at
//! chaos scale. Behind `--ignored`: the exhaustive every-day sweep at
//! both worker counts.

use iiscope::chaos::{
    chaos_config, crash_resume_digest, fnv64, straight_digest, CrashPlan, RunDigest,
};
use iiscope::checkpoint::{load_latest, snapshot_path};
use iiscope::subsystems::monitor::export::{charts_csv, offers_csv, profiles_csv};
use iiscope::wildsim::{CheckpointPolicy, WildRunOptions};
use iiscope::{HoneyStudy, WildArtifacts, World, WorldConfig};
use std::path::PathBuf;

/// A unique, self-cleaning checkpoint directory per test case.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "iiscope-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create checkpoint dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn digest_of(world: &World, artifacts: &WildArtifacts, honey: HoneyStudy) -> RunDigest {
    let report = iiscope::experiments::full_report(world, artifacts, honey);
    RunDigest {
        report: fnv64(report.as_bytes()),
        offers_csv: fnv64(offers_csv(&artifacts.dataset).as_bytes()),
        profiles_csv: fnv64(profiles_csv(&artifacts.dataset).as_bytes()),
        charts_csv: fnv64(charts_csv(&artifacts.dataset).as_bytes()),
    }
}

/// Sweep kill days for one config, comparing each crash-and-resume
/// digest against the straight-through baseline.
fn sweep(cfg: WorldConfig, kill_days: &[u64], tag: &str) {
    let straight = straight_digest(cfg.clone()).expect("straight run");
    for &kill in kill_days {
        let dir = TempDir::new(&format!("{tag}-k{kill}"));
        let resumed = crash_resume_digest(cfg.clone(), kill, &dir.0)
            .unwrap_or_else(|e| panic!("{tag}: crash at day {kill} failed to resume: {e}"));
        assert_eq!(
            resumed, straight,
            "{tag}: crash at day {kill} + resume is not byte-identical to straight-through"
        );
    }
}

#[test]
fn kill_point_sweep_resumes_byte_identical() {
    // chaos scale: 8 monitoring days, cadence 4 → kill points at the
    // first, second, mid, last-1 and last loop days.
    for seed in [42, 7] {
        sweep(chaos_config(seed), &[0, 1, 4, 7, 8], &format!("s{seed}"));
    }
}

#[test]
fn kill_point_sweep_resumes_byte_identical_at_8_workers() {
    let mut cfg = chaos_config(42);
    cfg.parallelism = 8;
    // The baseline inside sweep() also runs at 8 workers; equality to
    // the 1-worker digests is covered by the cross-worker test below.
    sweep(cfg, &[1, 4, 8], "s42-par8");
}

#[test]
fn snapshot_written_at_one_worker_count_resumes_at_another() {
    // First life at 1 worker, crash at day 7 (snapshots at days 0, 4);
    // second life resumes the day-4 snapshot at 8 workers. The config
    // fingerprint excludes parallelism, so this must both be accepted
    // and stay byte-identical.
    let dir = TempDir::new("cross-workers");
    let cfg = chaos_config(42);
    let straight = straight_digest(cfg.clone()).expect("straight run");

    {
        let world = World::build(cfg.clone()).unwrap();
        world.run_honey_study(world.study_start()).unwrap();
        let crashed = world.run_wild_study_with(WildRunOptions {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.0.clone(),
                every_days: cfg.crawl_cadence_days,
            }),
            resume: None,
            crash: Some(CrashPlan { kill_day: 7 }),
        });
        assert!(
            matches!(
                crashed,
                Err(iiscope::subsystems::types::Error::Interrupted(_))
            ),
            "kill-point must surface as Error::Interrupted"
        );
    }

    let mut cfg8 = cfg;
    cfg8.parallelism = 8;
    let world = World::build(cfg8).unwrap();
    let honey = world.run_honey_study(world.study_start()).unwrap();
    let scan = load_latest(&dir.0).unwrap();
    let (snap, _) = scan.snapshot.expect("a valid snapshot exists");
    assert_eq!(snap.day, 4, "newest snapshot is the day-4 one");
    let artifacts = world
        .run_wild_study_with(WildRunOptions {
            checkpoint: None,
            resume: Some(snap),
            crash: None,
        })
        .unwrap();
    assert_eq!(artifacts.checkpoints.resumed_from_day, Some(4));
    assert_eq!(
        digest_of(&world, &artifacts, honey),
        straight,
        "1-worker snapshot resumed at 8 workers must stay byte-identical"
    );
}

#[test]
fn corrupt_snapshots_fall_back_to_last_valid_and_stay_byte_identical() {
    let dir = TempDir::new("corrupt-fallback");
    let cfg = chaos_config(7);
    let straight = straight_digest(cfg.clone()).expect("straight run");

    // First life: crash at day 7 leaves snapshots for days 0 and 4.
    {
        let world = World::build(cfg.clone()).unwrap();
        world.run_honey_study(world.study_start()).unwrap();
        let crashed = world.run_wild_study_with(WildRunOptions {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.0.clone(),
                every_days: cfg.crawl_cadence_days,
            }),
            resume: None,
            crash: Some(CrashPlan { kill_day: 7 }),
        });
        assert!(crashed.is_err());
    }
    assert!(snapshot_path(&dir.0, 0).exists());
    assert!(snapshot_path(&dir.0, 4).exists());

    // Flip one bit in the middle of the newest snapshot: the scan must
    // skip it (CRC) and fall back to day 0 — no panic, no wrong data.
    let newest = snapshot_path(&dir.0, 4);
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&newest, &bytes).unwrap();

    let scan = load_latest(&dir.0).unwrap();
    assert_eq!(scan.candidates, 2);
    assert_eq!(scan.skipped.len(), 1, "corrupt day-4 snapshot was skipped");
    let (snap, _) = scan.snapshot.expect("day-0 snapshot still valid");
    assert_eq!(snap.day, 0);

    {
        let world = World::build(cfg.clone()).unwrap();
        let honey = world.run_honey_study(world.study_start()).unwrap();
        let artifacts = world
            .run_wild_study_with(WildRunOptions {
                checkpoint: None,
                resume: Some(snap),
                crash: None,
            })
            .unwrap();
        assert_eq!(
            digest_of(&world, &artifacts, honey),
            straight,
            "resume from the fallback snapshot must stay byte-identical"
        );
    }

    // Truncate the day-0 snapshot too: nothing valid remains, which is
    // a (logged) fresh start — still byte-identical, still no panic.
    let older = snapshot_path(&dir.0, 0);
    let bytes = std::fs::read(&older).unwrap();
    std::fs::write(&older, &bytes[..bytes.len() / 3]).unwrap();
    let scan = load_latest(&dir.0).unwrap();
    assert!(scan.snapshot.is_none());
    assert_eq!(scan.skipped.len(), 2);

    let world = World::build(cfg).unwrap();
    let honey = world.run_honey_study(world.study_start()).unwrap();
    let artifacts = world.run_wild_study().unwrap();
    assert_eq!(digest_of(&world, &artifacts, honey), straight);
}

#[test]
fn incompatible_snapshots_are_refused_not_resumed() {
    // A snapshot from seed 42 must be refused by a seed-43 world, and
    // by a seed-42 world whose result-relevant config changed.
    let dir = TempDir::new("incompatible");
    let cfg = chaos_config(42);
    {
        let world = World::build(cfg.clone()).unwrap();
        world.run_honey_study(world.study_start()).unwrap();
        let _ = world.run_wild_study_with(WildRunOptions {
            checkpoint: Some(CheckpointPolicy {
                dir: dir.0.clone(),
                every_days: cfg.crawl_cadence_days,
            }),
            resume: None,
            crash: Some(CrashPlan { kill_day: 5 }),
        });
    }
    let (snap, _) = load_latest(&dir.0).unwrap().snapshot.unwrap();

    let other = World::build(chaos_config(43)).unwrap();
    other.run_honey_study(other.study_start()).unwrap();
    let err = other
        .run_wild_study_with(WildRunOptions {
            checkpoint: None,
            resume: Some(snap.clone()),
            crash: None,
        })
        .map(|_| ())
        .expect_err("seed mismatch must refuse the resume");
    assert!(
        err.to_string().contains("seed"),
        "diagnostic names the seed mismatch: {err}"
    );

    let mut changed = chaos_config(42);
    changed.monitoring_days += 2;
    let world = World::build(changed).unwrap();
    world.run_honey_study(world.study_start()).unwrap();
    let err = world
        .run_wild_study_with(WildRunOptions {
            checkpoint: None,
            resume: Some(snap),
            crash: None,
        })
        .map(|_| ())
        .expect_err("config change must refuse the resume");
    assert!(
        err.to_string().contains("fingerprint"),
        "diagnostic names the fingerprint mismatch: {err}"
    );
}

#[test]
#[ignore = "exhaustive kill sweep; run with --ignored (CI nightly)"]
fn full_kill_sweep_every_day_both_worker_counts() {
    for seed in [42, 7] {
        let cfg = chaos_config(seed);
        let all_days: Vec<u64> = (0..=cfg.monitoring_days).collect();
        sweep(cfg.clone(), &all_days, &format!("full-s{seed}"));
        let mut cfg8 = cfg;
        cfg8.parallelism = 8;
        sweep(cfg8, &all_days, &format!("full-s{seed}-par8"));
    }
}
