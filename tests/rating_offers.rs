//! Extension: incentivized star-rating offers ("Install and rate N
//! stars"). The paper's cited policy page protects "User Ratings,
//! Reviews, and Installs" as one surface; this exercises the ratings
//! facet end to end — generator → offer wall → MITM interception →
//! parser → classifier, and completions landing in the store ledger.

use iiscope::subsystems::analysis::classify::{classify_description, ActivityKind, OfferType};
use iiscope::{World, WorldConfig};

#[test]
fn rating_offers_flow_end_to_end() {
    let mut cfg = WorldConfig::small(909);
    cfg.rating_offers = true;
    let world = World::build(cfg).expect("build");
    let artifacts = world.run_wild_study().expect("wild study");

    // Completions really recorded star ratings in the store ledger.
    assert!(
        artifacts.incentivized_ratings > 0,
        "rating-offer completions must record ratings"
    );

    // The offers crossed the wire: the monitor intercepted and parsed
    // them like any other offer, and they read as rating offers.
    let star_offers: Vec<_> = artifacts
        .dataset
        .offers()
        .filter(|o| {
            let d = o.raw.description.to_ascii_lowercase();
            d.contains("star") || d.contains("rate ")
        })
        .collect();
    assert!(
        !star_offers.is_empty(),
        "intercepted dataset must contain rating offers"
    );

    // The §4.3.1 classifier files them as activity (closest bucket —
    // the paper's taxonomy has no rating class).
    for o in &star_offers {
        assert_eq!(
            classify_description(&o.raw.description),
            OfferType::Activity(ActivityKind::Usage),
            "{:?}",
            o.raw.description
        );
    }
}

#[test]
fn default_world_has_no_rating_offers() {
    let world = World::build(WorldConfig::small(909)).expect("build");
    let artifacts = world.run_wild_study().expect("wild study");
    assert_eq!(
        artifacts.incentivized_ratings, 0,
        "the calibrated world must not record incentivized ratings"
    );
    assert!(
        !artifacts.dataset.offers().any(|o| o
            .raw
            .description
            .to_ascii_lowercase()
            .contains("star")),
        "no rating offers on the walls by default"
    );
}
