//! The million-device-world contracts: sharded day loop and
//! out-of-core dataset.
//!
//! Three knobs select the run's *shape* without touching its *data*:
//!
//! - `parallelism` — at any fixed shard count, 1 worker and 8 workers
//!   produce the same bytes (op buffers merge in shard-index order);
//! - `memory_budget` — a dataset forced to spill almost everything is
//!   byte-identical to a fully-resident run (report and CSVs);
//! - both at once — spilling under the parallel path changes nothing.
//!
//! `scale` and `shards` are *world identity* knobs (they select which
//! RNG streams drive delivery), so runs at different values legally
//! differ — but each such world must itself be deterministic and
//! worker-invariant, which the sharded smoke pins.

use iiscope::chaos::{chaos_config, crash_resume_digest, straight_digest};
use iiscope::experiments;
use iiscope::subsystems::monitor::export;
use iiscope::{World, WorldConfig};

/// A reduced world exercising every mechanism in seconds, with the
/// scale knobs applied on top.
fn reduced(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.monitoring_days = 8;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 25;
    cfg.baseline_apps = 10;
    cfg.honey_purchase = 60;
    cfg
}

struct RunOut {
    report: String,
    csv: [String; 3],
    tagged_installs: u64,
    spilled_segments: u64,
    reloads: u64,
}

fn run(cfg: WorldConfig) -> RunOut {
    let world = World::build(cfg).expect("build");
    let honey = world
        .run_honey_study(world.study_start())
        .expect("honey study");
    let artifacts = world.run_wild_study().expect("wild study");
    let report = experiments::full_report(&world, &artifacts, honey);
    let csv = [
        export::offers_csv(&artifacts.dataset),
        export::profiles_csv(&artifacts.dataset),
        export::charts_csv(&artifacts.dataset),
    ];
    // Sampled after the report + export walked the full history, so
    // `reloads` counts the decodes those reads forced.
    let stats = artifacts.dataset.spill_stats();
    RunOut {
        report,
        csv,
        tagged_installs: artifacts.tagged_installs,
        spilled_segments: stats.spilled_segments,
        reloads: stats.reloads,
    }
}

#[test]
fn tiny_memory_budget_changes_no_bytes_at_any_worker_count() {
    let resident = run(reduced(5_150));
    assert_eq!(resident.spilled_segments, 0, "no budget, no spilling");

    for parallelism in [1, 8] {
        let dir = std::env::temp_dir().join(format!("iiscope-scale-test-{parallelism}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = reduced(5_150);
        cfg.parallelism = parallelism;
        // Small enough that nearly every closed segment is evicted.
        cfg.memory_budget = Some(32 * 1024);
        cfg.spill_dir = Some(dir.clone());
        let spilled = run(cfg);
        assert!(
            spilled.spilled_segments > 0,
            "a 32 KiB budget must actually spill ({parallelism} workers)"
        );
        assert_eq!(
            resident.report, spilled.report,
            "report must be byte-identical under spilling ({parallelism} workers)"
        );
        assert_eq!(
            resident.csv, spilled.csv,
            "CSV export must be byte-identical under spilling ({parallelism} workers)"
        );
        // The CSV export walks the full offer/chart history, so cold
        // segments were demonstrably decoded back.
        assert!(
            spilled.reloads > 0,
            "exporting a spilled dataset must reload segments"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn scaled_sharded_world_is_worker_invariant_and_scales_delivery() {
    let baseline = run(reduced(6_260));

    let scaled = |parallelism: usize| {
        let mut cfg = reduced(6_260);
        cfg.scale = 3;
        cfg.shards = 4;
        cfg.parallelism = parallelism;
        cfg
    };
    let seq = run(scaled(1));
    let par = run(scaled(8));
    assert_eq!(
        seq.report, par.report,
        "scaled+sharded report must not depend on worker count"
    );
    assert_eq!(
        seq.csv, par.csv,
        "scaled+sharded CSVs must not depend on worker count"
    );
    // 3x the campaign caps must deliver roughly 3x the tagged installs
    // (carry/rounding and caps make it inexact; 2x is a safe floor).
    assert!(
        seq.tagged_installs > baseline.tagged_installs * 2,
        "3x scale delivered {} vs baseline {}",
        seq.tagged_installs,
        baseline.tagged_installs
    );
}

#[test]
fn crash_resume_under_memory_budget_stays_byte_identical() {
    // Snapshot v2 references spilled segments (manifest + resident
    // suffix) instead of re-serializing the history. Kill a budgeted,
    // sharded run mid-study, resume it from the snapshot — which must
    // re-attach the spill file, CRC-validate every referenced segment
    // and keep appending to it — and require the same bytes a
    // straight-through run produces.
    let base = std::env::temp_dir().join(format!("iiscope-scale-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cfg_with = |spill: &str| {
        let mut cfg = chaos_config(8_480);
        cfg.shards = 3;
        cfg.memory_budget = Some(32 * 1024);
        cfg.spill_dir = Some(base.join(spill));
        cfg
    };
    let straight = straight_digest(cfg_with("straight")).expect("straight run");
    let ckpt_dir = base.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("checkpoint dir");
    let resumed = crash_resume_digest(cfg_with("crashed"), 5, &ckpt_dir).expect("crash + resume");
    assert_eq!(
        resumed, straight,
        "budgeted crash-and-resume is not byte-identical to straight-through"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn shard_count_one_is_bit_identical_to_the_legacy_loop() {
    // shards = 1 is not a special case in the code anymore — the op
    // buffer path runs unconditionally — so this pins that the
    // restructure itself changed no bytes vs. the committed behaviour
    // (the determinism suite's oracle covers paper scale; this covers
    // the reduced world in tier-1).
    let a = run(reduced(7_370));
    let mut cfg = reduced(7_370);
    cfg.shards = 1;
    cfg.parallelism = 8;
    let b = run(cfg);
    assert_eq!(a.report, b.report);
    assert_eq!(a.csv, b.csv);
}
