//! The socket server front-end: conformance, adversarial robustness,
//! soak, and the determinism guard.
//!
//! Wire parity is the load-bearing contract: a real TCP client must
//! see byte-for-byte the responses the in-process engine produces for
//! the same input stream, at every fragmentation (whole requests,
//! byte-at-a-time trickle, full pipeline, arbitrary chunking). On top
//! of that, adversarial clients (slowloris, half-close, garbage,
//! oversized frames) must get the mapped status or a clean drop —
//! never a panic or a hung worker — and serving a world mid-run must
//! leave the seed-42 report and CSVs byte-identical to a no-server
//! run. The nightly `--ignored` soak emits `BENCH_serve.json`.

use iiscope::experiments;
use iiscope::subsystems::monitor::export;
use iiscope::subsystems::netsim::{AsnId, AsnKind, HostAddr, PeerInfo};
use iiscope::subsystems::serve::stats::{LatencyLog, StatusTally};
use iiscope::subsystems::serve::{AdminHandler, ServeConfig, Server, ShutdownFlag};
use iiscope::subsystems::types::{Country, SeedFork, SimTime};
use iiscope::subsystems::wire::http::{Method, RequestCtx};
use iiscope::subsystems::wire::server::HttpEngine;
use iiscope::subsystems::wire::{Handler, Request, Response};
use iiscope::{World, WorldConfig};
use proptest::prelude::*;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Shared rig
// ---------------------------------------------------------------------

/// A handler whose responses depend only on the request — never on the
/// peer — so the socket path (real client address) and the in-process
/// oracle (synthetic peer) must agree byte-for-byte.
fn conformance_handler() -> Arc<dyn Handler> {
    Arc::new(|req: &Request, _ctx: &RequestCtx| -> Response {
        match (req.method, req.path()) {
            (Method::Get, "/ping") => Response::ok_text("pong"),
            (Method::Post, "/echo") => {
                Response::ok_bytes(req.body.clone(), "application/octet-stream")
            }
            (Method::Get, "/query") => Response::ok_text(req.query_param("k").unwrap_or_default()),
            _ => Response::not_found(),
        }
    })
}

fn synthetic_peer() -> PeerInfo {
    PeerInfo {
        addr: HostAddr {
            ip: std::net::Ipv4Addr::new(198, 51, 100, 7),
            asn: AsnId(64512),
            asn_kind: AsnKind::Eyeball,
            country: Country::Us,
        },
        opened_at: SimTime::EPOCH,
        link: SeedFork::new(1),
    }
}

/// One conformance server shared by every proptest case (leaked: test
/// processes exit, the OS reaps the threads).
fn conformance_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let cfg = ServeConfig {
            workers: 2,
            conn_cap: 64,
            idle_timeout: Duration::from_secs(10),
            ..ServeConfig::default()
        };
        let server = Server::start("127.0.0.1:0", cfg, conformance_handler()).unwrap();
        let addr = server.local_addr();
        std::mem::forget(server);
        addr
    })
}

/// The in-process oracle: one `feed` of the whole stream.
fn oracle_bytes(stream: &[u8]) -> Vec<u8> {
    let mut engine = HttpEngine::new(conformance_handler());
    engine
        .feed(stream, synthetic_peer(), SimTime::EPOCH)
        .to_vec()
}

/// Writes `stream` to a fresh socket in the given fragments, then
/// reads exactly `expect` response bytes back.
fn socket_exchange(addr: SocketAddr, fragments: &[&[u8]], expect: usize) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_nodelay(true).unwrap();
    for frag in fragments {
        conn.write_all(frag).unwrap();
    }
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut got = vec![0u8; expect];
    conn.read_exact(&mut got).unwrap();
    got
}

/// Splits `stream` at the given cut points (clamped, deduped order
/// not required).
fn split_at_points<'a>(stream: &'a [u8], cuts: &[usize]) -> Vec<&'a [u8]> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    points.sort_unstable();
    let mut out = Vec::new();
    let mut prev = 0;
    for p in points {
        if p > prev {
            out.push(&stream[prev..p]);
            prev = p;
        }
    }
    if prev < stream.len() {
        out.push(&stream[prev..]);
    }
    out
}

// ---------------------------------------------------------------------
// Satellite 1: socket conformance proptests
// ---------------------------------------------------------------------

/// One request in the generated stream (all well-formed; poisoned
/// streams are covered by the adversarial tests, where the connection
/// legitimately closes early).
#[derive(Debug, Clone)]
enum ReqSpec {
    Ping,
    Echo(Vec<u8>),
    Query(String),
    Unknown(String),
}

impl ReqSpec {
    fn encode(&self) -> Vec<u8> {
        match self {
            ReqSpec::Ping => Request::get("/ping").encode().to_vec(),
            ReqSpec::Echo(body) => Request::post("/echo", body.clone()).encode().to_vec(),
            ReqSpec::Query(k) => Request::get(format!("/query?k={k}")).encode().to_vec(),
            ReqSpec::Unknown(p) => Request::get(format!("/{p}")).encode().to_vec(),
        }
    }
}

fn arb_request() -> impl Strategy<Value = ReqSpec> {
    prop_oneof![
        Just(ReqSpec::Ping),
        prop::collection::vec(any::<u8>(), 0..200).prop_map(ReqSpec::Echo),
        "[a-z0-9]{0,12}".prop_map(ReqSpec::Query),
        "[a-z]{1,8}".prop_map(ReqSpec::Unknown),
    ]
}

fn stream_of(reqs: &[ReqSpec]) -> Vec<u8> {
    reqs.iter().flat_map(|r| r.encode()).collect()
}

proptest! {
    /// Whole-request writes: one write per request.
    #[test]
    fn socket_matches_engine_on_whole_requests(reqs in prop::collection::vec(arb_request(), 1..8)) {
        let stream = stream_of(&reqs);
        let oracle = oracle_bytes(&stream);
        let frames: Vec<Vec<u8>> = reqs.iter().map(|r| r.encode()).collect();
        let frames: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
        let got = socket_exchange(conformance_addr(), &frames, oracle.len());
        prop_assert_eq!(got, oracle);
    }

    /// Byte-at-a-time trickle: maximal fragmentation, every request
    /// crosses the reassembly path.
    #[test]
    fn socket_matches_engine_byte_at_a_time(reqs in prop::collection::vec(arb_request(), 1..4)) {
        let stream = stream_of(&reqs);
        let oracle = oracle_bytes(&stream);
        let frames: Vec<&[u8]> = stream.chunks(1).collect();
        let got = socket_exchange(conformance_addr(), &frames, oracle.len());
        prop_assert_eq!(got, oracle);
    }

    /// Full pipeline: every request in one write.
    #[test]
    fn socket_matches_engine_pipelined(reqs in prop::collection::vec(arb_request(), 1..8)) {
        let stream = stream_of(&reqs);
        let oracle = oracle_bytes(&stream);
        let got = socket_exchange(conformance_addr(), &[&stream], oracle.len());
        prop_assert_eq!(got, oracle);
    }

    /// Arbitrary chunking: cut points chosen by the generator.
    #[test]
    fn socket_matches_engine_on_arbitrary_chunks(
        reqs in prop::collection::vec(arb_request(), 1..6),
        cuts in prop::collection::vec(any::<usize>(), 0..12),
    ) {
        let stream = stream_of(&reqs);
        let oracle = oracle_bytes(&stream);
        let frames = split_at_points(&stream, &cuts);
        let got = socket_exchange(conformance_addr(), &frames, oracle.len());
        prop_assert_eq!(got, oracle);
    }
}

/// A garbage tail after valid requests: the socket closes after the
/// mapped 400, and everything up to and including that 400 matches the
/// in-process engine byte-for-byte.
#[test]
fn socket_matches_engine_on_poisoned_tail() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&Request::get("/ping").encode());
    stream.extend_from_slice(&Request::post("/echo", b"abc".to_vec()).encode());
    stream.extend_from_slice(b"NONSENSE\r\n\r\n");
    let oracle = oracle_bytes(&stream);

    let mut conn = TcpStream::connect(conformance_addr()).unwrap();
    conn.write_all(&stream).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut got = Vec::new();
    conn.read_to_end(&mut got).unwrap(); // server closes after the 400
    assert_eq!(got, oracle);
}

// ---------------------------------------------------------------------
// Satellite 2: adversarial clients + in-suite soak
// ---------------------------------------------------------------------

fn adversarial_server() -> (Server, SocketAddr) {
    let cfg = ServeConfig {
        workers: 1,
        conn_cap: 16,
        idle_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg, conformance_handler()).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn read_status(conn: &mut TcpStream) -> u16 {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Ok(Some((resp, _))) = Response::parse(&buf) {
                    return resp.status;
                }
            }
            Err(_) => break, // reset mid-read: whatever arrived is the answer
        }
    }
    panic!("connection closed without a complete response");
}

#[test]
fn slowloris_header_trickle_gets_408_then_close() {
    let (server, addr) = adversarial_server();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_nodelay(true).unwrap();
    // Trickle a header fragment, then stall past the idle timeout.
    conn.write_all(b"GET /ping HT").unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(read_status(&mut conn), 408);
    // And the close really is a close.
    let mut rest = Vec::new();
    conn.read_to_end(&mut rest).unwrap();
    server.stop();
}

#[test]
fn half_close_mid_request_is_a_clean_drop() {
    let (server, addr) = adversarial_server();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 50\r\n\r\npartial")
        .unwrap();
    conn.shutdown(Shutdown::Write).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // No response is owed for an incomplete request: just EOF.
    let mut got = Vec::new();
    conn.read_to_end(&mut got).unwrap();
    assert!(got.is_empty(), "unexpected bytes: {got:?}");
    server.stop(); // must not hang on the dead worker
}

#[test]
fn garbage_preamble_gets_400_and_close() {
    let (server, addr) = adversarial_server();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"\x16\x03\x01NOT HTTP AT ALL\r\n\r\n")
        .unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(read_status(&mut conn), 400);
    server.stop();
}

#[test]
fn oversized_header_block_gets_431() {
    let (server, addr) = adversarial_server();
    let mut conn = TcpStream::connect(addr).unwrap();
    // > MAX_HEADER_BYTES without a terminator; write fully, then read.
    let junk = vec![b'a'; 17 * 1024];
    conn.write_all(&junk).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(read_status(&mut conn), 431);
    server.stop();
}

#[test]
fn oversized_declared_body_gets_413() {
    let (server, addr) = adversarial_server();
    let mut conn = TcpStream::connect(addr).unwrap();
    let req = format!(
        "POST /echo HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        9 * 1024 * 1024
    );
    conn.write_all(req.as_bytes()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(read_status(&mut conn), 413);
    server.stop();
}

/// Sends one request on an open connection and returns the response
/// status, or None if nothing arrived within `wait`.
fn try_request(conn: &mut TcpStream, target: &str, wait: Duration) -> Option<u16> {
    conn.write_all(&Request::get(target).encode()).ok()?;
    conn.set_read_timeout(Some(wait)).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match conn.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Ok(Some((resp, _))) = Response::parse(&buf) {
                    return Some(resp.status);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return None
            }
            Err(_) => return None,
        }
    }
}

/// Holds the cap's worth of keep-alive connections, proves the
/// cap+1'th connection is *not* served while they hold their permits,
/// proves it *is* served once a permit frees, then drains.
#[test]
fn soak_holds_cap_keepalive_conns_with_backpressure_then_drains() {
    const CAP: usize = 64;
    let cfg = ServeConfig {
        workers: 2,
        conn_cap: CAP,
        idle_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg, conformance_handler()).unwrap();
    let addr = server.local_addr();

    // Fill the cap with live keep-alive connections; every one must be
    // served concurrently (each holds its permit until dropped).
    let mut held: Vec<TcpStream> = Vec::with_capacity(CAP);
    for i in 0..CAP {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_nodelay(true).unwrap();
        assert_eq!(
            try_request(&mut conn, "/ping", Duration::from_secs(10)),
            Some(200),
            "connection {i} of {CAP} was not served"
        );
        held.push(conn);
    }
    // All permits are held: the next connection connects (kernel
    // backlog) but is never accepted, so its request goes unanswered.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra.set_nodelay(true).unwrap();
    assert_eq!(
        try_request(&mut extra, "/ping", Duration::from_millis(400)),
        None,
        "connection beyond the cap must wait for a permit"
    );
    // Free one permit; the waiting connection must now be served (its
    // request is already buffered in the socket).
    drop(held.pop());
    assert_eq!(
        try_request(&mut extra, "/ping", Duration::from_secs(10)),
        Some(200),
        "freed permit must unblock the waiting connection"
    );
    // Clean drain with the remaining connections still open.
    server.stop();
    assert_eq!(server.inflight(), 0, "drain must reach zero in-flight");
}

// ---------------------------------------------------------------------
// Satellite 3: determinism guard — serving mid-run changes no bytes
// ---------------------------------------------------------------------

/// The reduced world of `tests/determinism.rs`: every mechanism
/// exercised, minutes → seconds.
fn reduced(seed: u64, parallelism: usize) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.monitoring_days = 8;
    cfg.crawl_cadence_days = 4;
    cfg.advertised_apps = 25;
    cfg.baseline_apps = 10;
    cfg.honey_purchase = 60;
    cfg.parallelism = parallelism;
    cfg
}

type RunOutput = (String, [String; 3]);

fn run_world(cfg: WorldConfig, serve: bool) -> RunOutput {
    let world = World::build(cfg).unwrap();
    // With `serve`, a real server binds the world's router and client
    // threads hammer the chart/wall/profile endpoints for the whole
    // run — none of it may perturb a single output byte.
    let rig = serve.then(|| {
        let cfg = ServeConfig {
            workers: 2,
            conn_cap: 32,
            sim_now: world.study_end(),
            ..ServeConfig::default()
        };
        let router = world.serve_router();
        let server = Server::start("127.0.0.1:0", cfg, router.clone()).unwrap();
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..3)
            .map(|i| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let targets = [
                        "/store/charts?chart=topselling_free&n=10",
                        "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps",
                        "/store/apps/details?id=net.iiscope.voicememos",
                        "/wall/ayetstudios/offers?affiliate=com.mobvantage.cashforapps&page=1",
                    ];
                    let mut served = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let Ok(mut conn) = TcpStream::connect(addr) else {
                            continue;
                        };
                        let _ = conn.set_nodelay(true);
                        for target in targets.iter().cycle().skip(i).take(8) {
                            if conn.write_all(&Request::get(*target).encode()).is_err() {
                                break;
                            }
                            conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                            let mut buf = Vec::new();
                            let mut chunk = [0u8; 8192];
                            loop {
                                match conn.read(&mut chunk) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        buf.extend_from_slice(&chunk[..n]);
                                        if Response::parse(&buf).ok().flatten().is_some() {
                                            served += 1;
                                            break;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    served
                })
            })
            .collect();
        (server, stop, hammers, router)
    });

    let honey = world.run_honey_study(world.study_start()).unwrap();
    let artifacts = world.run_wild_study().unwrap();
    let report = experiments::full_report(&world, &artifacts, honey);
    let csv = [
        export::offers_csv(&artifacts.dataset),
        export::profiles_csv(&artifacts.dataset),
        export::charts_csv(&artifacts.dataset),
    ];

    if let Some((server, stop, hammers, router)) = rig {
        stop.store(true, Ordering::Relaxed);
        let served: u64 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
        server.stop();
        // The guard is vacuous if the hammer never landed a request —
        // and, since PR 9, if none of them hit the response cache (the
        // guard must cover the cached read path, not just rendering).
        assert!(served > 0, "hammer clients served no requests");
        assert!(router.cache_enabled(), "serve_router() must cache");
        assert!(
            router.cache_stats().hits() > 0,
            "hammer clients never hit the response cache"
        );
    }
    (report, csv)
}

#[test]
fn serving_mid_run_changes_no_output_bytes() {
    let oracle = run_world(reduced(42, 1), false);
    let served_1 = run_world(reduced(42, 1), true);
    assert_eq!(oracle, served_1, "1-worker run diverged under --serve");
    let served_8 = run_world(reduced(42, 8), true);
    assert_eq!(oracle, served_8, "8-worker run diverged under --serve");
    assert!(oracle.0.contains("Table 5"));
}

// ---------------------------------------------------------------------
// Nightly soak: BENCH_serve.json + paper-scale guard
// ---------------------------------------------------------------------

/// Sustained soak against a small world's real router: connection
/// churn for conns/sec, then ≥64 concurrent keep-alive clients for
/// request latency. Writes `BENCH_serve.json` (shared envelope).
/// Nightly sized; run with `cargo test --release --test serve -- --ignored`.
#[test]
#[ignore = "nightly soak; run with --release -- --ignored"]
fn nightly_soak_emits_bench_serve_json() {
    const WORKERS: usize = 4;
    const CLIENTS: usize = 64;
    const REQS_PER_CLIENT: usize = 200;
    const CHURN_CONNS: usize = 1000;

    let world = World::build(reduced(42, 1)).unwrap();
    let flag = ShutdownFlag::new();
    let cfg = ServeConfig {
        workers: WORKERS,
        conn_cap: CLIENTS + 8,
        sim_now: world.study_end(),
        ..ServeConfig::default()
    };
    let handler = Arc::new(AdminHandler::new(world.serve_router(), flag.clone()));
    let server = Server::start("127.0.0.1:0", cfg, handler).unwrap();
    let addr = server.local_addr();

    // Phase 1: connection churn — one request per fresh connection.
    let t = Instant::now();
    let churn_threads: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..CHURN_CONNS / 8 {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    conn.set_nodelay(true).unwrap();
                    assert_eq!(
                        try_request(&mut conn, "/healthz", Duration::from_secs(10)),
                        Some(200)
                    );
                }
            })
        })
        .collect();
    for h in churn_threads {
        h.join().unwrap();
    }
    let conns_per_sec = CHURN_CONNS as f64 / t.elapsed().as_secs_f64();

    // Phase 2: ≥64 concurrent keep-alive clients, per-request latency.
    let t = Instant::now();
    let latency_threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let targets = [
                    "/store/charts?chart=topselling_free&n=10",
                    "/wall/fyber/offers?affiliate=com.mobvantage.cashforapps",
                    "/store/apps/details?id=net.iiscope.voicememos",
                    "/healthz",
                ];
                let mut log = LatencyLog::new();
                let mut tally = StatusTally::new();
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.set_nodelay(true).unwrap();
                conn.set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut buf = Vec::new();
                let mut chunk = [0u8; 16384];
                for r in 0..REQS_PER_CLIENT {
                    let target = targets[(i + r) % targets.len()];
                    let t = Instant::now();
                    conn.write_all(&Request::get(target).encode()).unwrap();
                    buf.clear();
                    loop {
                        let n = conn.read(&mut chunk).unwrap();
                        assert!(n > 0, "server closed mid-soak");
                        buf.extend_from_slice(&chunk[..n]);
                        if let Ok(Some((resp, _))) = Response::parse(&buf) {
                            assert_eq!(resp.status, 200, "{target}");
                            tally.record(resp.status);
                            break;
                        }
                    }
                    log.record(t.elapsed().as_micros() as u64);
                }
                (log, tally)
            })
        })
        .collect();
    let mut log = LatencyLog::new();
    let mut tally = StatusTally::new();
    for h in latency_threads {
        let (l, t) = h.join().unwrap();
        log.merge(l);
        tally.merge(t);
    }
    let soak_secs = t.elapsed().as_secs_f64();
    assert_eq!(log.len(), CLIENTS * REQS_PER_CLIENT);

    let (p50, p99) = (log.percentile_us(50.0), log.percentile_us(99.0));
    let requests_per_sec = log.len() as f64 / soak_secs;
    let mut s = String::from("{\n");
    s.push_str(&iiscope_bench::envelope("soak", 42, WORKERS));
    s.push_str(&format!("  \"concurrent_conns\": {CLIENTS},\n"));
    s.push_str(&format!("  \"requests\": {},\n", log.len()));
    s.push_str(&format!("  \"conns_per_sec\": {conns_per_sec:.1},\n"));
    s.push_str(&format!("  \"requests_per_sec\": {requests_per_sec:.1},\n"));
    s.push_str(&format!("  \"p50_us\": {p50},\n"));
    s.push_str(&format!("  \"p99_us\": {p99},\n"));
    s.push_str("  \"statuses\": {\n");
    let fields = tally.fields();
    for (i, (name, value)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        s.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    std::fs::write("BENCH_serve.json", s).unwrap();
    assert_eq!(tally.total(), log.len() as u64);
    assert_eq!(tally.errors(), 0, "clean soak must tally zero errors");

    flag.trigger();
    server.stop();
    assert_eq!(server.inflight(), 0);
}

/// Paper scale: the committed seed-42 oracle must regenerate
/// byte-for-byte with the server bound and a client hammering it for
/// the whole run. Nightly sized (~1 min release).
#[test]
#[ignore = "paper scale; run with --release -- --ignored"]
fn paper_scale_seed42_report_survives_serving() {
    let mut cfg = WorldConfig::paper(42);
    cfg.parallelism = 8;
    let world = World::build(cfg).unwrap();
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            sim_now: world.study_end(),
            ..ServeConfig::default()
        },
        world.serve_router(),
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Ok(mut conn) = TcpStream::connect(addr) {
                    let _ = try_request(
                        &mut conn,
                        "/store/charts?chart=topselling_free&n=10",
                        Duration::from_secs(5),
                    );
                }
            }
        })
    };

    let honey = world.run_honey_study(world.study_start()).unwrap();
    let artifacts = world.run_wild_study().unwrap();
    let report = experiments::full_report(&world, &artifacts, honey);
    stop.store(true, Ordering::Relaxed);
    hammer.join().unwrap();
    server.stop();

    let oracle = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/docs/report_seed42.txt"
    ))
    .expect("docs/report_seed42.txt");
    assert_eq!(
        format!("{report}\n"),
        oracle,
        "paper-scale run diverged from docs/report_seed42.txt under --serve"
    );
}
