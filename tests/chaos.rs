//! The chaos harness: sweep adversarial fault schedules × seeds
//! through small worlds and check the five invariants every point of
//! the grid must uphold:
//!
//! 1. **no panics** — every `run_chaos` returns (a panic or error at
//!    any grid point fails the sweep);
//! 2. **no hangs** — the shared clock ends inside a fixed sim-time
//!    budget: faults accrue connection-local skew, never shared time,
//!    so no fault plan can stretch the study schedule;
//! 3. **byte-identical reruns** — the same `(seed, plan)` reproduces
//!    the same outcome down to the report digest;
//! 4. **monotone degradation** — in the coupled telemetry scenario, a
//!    strictly higher drop rate never delivers *more* distinct
//!    installs;
//! 5. **report computability** — the full experiment report renders at
//!    every grid point (that is what `run_chaos` digests).
//!
//! The in-suite sweep covers the first three grid plans; the full
//! grid runs behind `--ignored` (CI's nightly profile).

use iiscope::chaos::{fault_grid, run_chaos, telemetry_survival, ChaosOutcome};
use iiscope::subsystems::types::time::study;

/// Sim-time budget (in days past the study start) no chaos run may
/// exceed: the 8 monitoring days plus the honey study's sequential
/// deliveries and quiet gaps. Faults cannot widen this — they only
/// consume connection-local skew.
const SIM_BUDGET_DAYS: u64 = 40;

fn check_invariants(name: &str, seed: u64, outcome: &ChaosOutcome) {
    assert!(
        outcome.end_clock_days <= study::STUDY_START.days() + SIM_BUDGET_DAYS,
        "{name}/{seed}: clock ran to day {} (budget {})",
        outcome.end_clock_days,
        study::STUDY_START.days() + SIM_BUDGET_DAYS
    );
    assert!(
        outcome.report_digest != 0,
        "{name}/{seed}: empty report digest"
    );
    assert!(
        outcome.honey_delivered <= 3 * 40 * 2,
        "{name}/{seed}: faults must not conjure installs ({})",
        outcome.honey_delivered
    );
}

#[test]
fn smoke_grid_upholds_all_invariants() {
    let grid = fault_grid();
    for (name, plan) in &grid[..3] {
        for seed in [42u64, 1337, 9001] {
            let a = run_chaos(seed, plan, 1)
                .unwrap_or_else(|e| panic!("{name}/{seed}: study died: {e}"));
            check_invariants(name, seed, &a);
            let b = run_chaos(seed, plan, 1).expect("rerun");
            assert_eq!(a, b, "{name}/{seed}: rerun must be byte-identical");
        }
    }
}

#[test]
fn light_loss_still_measures_the_ecosystem() {
    let (name, plan) = &fault_grid()[0];
    let outcome = run_chaos(42, plan, 1).expect("drop-light run");
    check_invariants(name, 42, &outcome);
    assert!(outcome.honey_delivered > 0, "honey campaigns delivered");
    assert!(
        outcome.telemetry_installs > 0,
        "telemetry reached the collector"
    );
    assert!(outcome.offer_observations > 0, "milking recovered offers");
    assert!(outcome.profile_snapshots > 0, "profile crawls landed");
}

#[test]
fn parallel_study_matches_sequential_under_faults() {
    let (_, plan) = &fault_grid()[0];
    let seq = run_chaos(4242, plan, 1).expect("sequential");
    let par = run_chaos(4242, plan, 8).expect("8 workers");
    assert_eq!(
        seq, par,
        "worker scheduling must be invisible even with faults armed"
    );
}

#[test]
fn degradation_is_monotone_in_the_drop_rate() {
    for seed in [5u64, 6, 7] {
        let chain: Vec<usize> = [0.0, 0.15, 0.35, 0.6]
            .iter()
            .map(|&p| telemetry_survival(seed, p, 40))
            .collect();
        assert_eq!(chain[0], 40, "clean network loses nothing (seed {seed})");
        for w in chain.windows(2) {
            assert!(
                w[0] >= w[1],
                "seed {seed}: more loss delivered more telemetry: {chain:?}"
            );
        }
    }
}

/// The full grid × seed matrix — every fault family, three seeds,
/// rerun each point for byte-identity. Nightly-profile sized; run with
/// `cargo test --test chaos -- --ignored`.
#[test]
#[ignore]
fn full_grid_upholds_all_invariants() {
    for (name, plan) in &fault_grid() {
        for seed in [42u64, 1337, 9001] {
            let a = run_chaos(seed, plan, 1)
                .unwrap_or_else(|e| panic!("{name}/{seed}: study died: {e}"));
            check_invariants(name, seed, &a);
            let b = run_chaos(seed, plan, 1).expect("rerun");
            assert_eq!(a, b, "{name}/{seed}: rerun must be byte-identical");
        }
    }
}
