//! The §5.2 proposal end to end: "our proposed measurements can
//! provide a ground truth of apps to help train machine learning
//! models in detecting the lockstep behavior."
//!
//! This example runs the monitoring pipeline to obtain labels, builds
//! Play-side features, trains the logistic-regression detector, and
//! prints the held-out metrics and the learned feature weights.
//!
//! ```sh
//! cargo run --release --example detector_training
//! ```

use iiscope::experiments::DetectorEval;
use iiscope::{World, WorldConfig};

const FEATURES: [&str; 6] = [
    "block_concentration",
    "suspicious_rate",
    "burstiness",
    "engagement_per_install",
    "session_minutes",
    "attributed_share",
];

fn main() {
    let world = World::build(WorldConfig::small(606)).expect("world build");
    println!("running the monitoring study to collect ground-truth labels…");
    let artifacts = world.run_wild_study().expect("wild study");

    let eval = DetectorEval::run(&world, &artifacts).expect("both classes present");
    println!("{}", eval.render());

    println!("learned weights (standardized feature space):");
    for (name, w) in FEATURES.iter().zip(eval.detector.weights()) {
        let bar_len = (w.abs() * 4.0).min(40.0) as usize;
        let bar = if w >= 0.0 { "+" } else { "-" }.repeat(bar_len.max(1));
        println!("  {name:<24} {w:>8.3}  {bar}");
    }
    println!();
    println!(
        "reading: positive weights push toward 'incentivized campaign'. \
         Address concentration and device fraud signals dominate — the \
         lockstep structure the paper proposed detecting."
    );
}
