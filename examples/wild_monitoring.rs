//! The §4 pipeline on a small world: milk offer walls through the MITM
//! proxy from two vantage points, crawl the Play Store every round, and
//! print the dataset summaries and the campaign-impact tables.
//!
//! ```sh
//! cargo run --release --example wild_monitoring
//! ```

use iiscope::experiments::{Table3, Table4, Table5, Table6};
use iiscope::{World, WorldConfig};

fn main() {
    let world = World::build(WorldConfig::small(77)).expect("world build");
    println!(
        "world: {} advertised apps, {} baseline apps, {}-day window",
        world.cfg.advertised_apps, world.cfg.baseline_apps, world.cfg.monitoring_days
    );

    println!("running the longitudinal study…");
    let artifacts = world.run_wild_study().expect("wild study");
    let ds = &artifacts.dataset;
    println!(
        "dataset: {} offer observations → {} unique offers, {} unique descriptions, {} advertised apps, {} profile snapshots, {} chart snapshots",
        ds.offers().len(),
        ds.unique_offers().len(),
        ds.unique_descriptions().len(),
        ds.advertised_packages().len(),
        ds.profiles().len(),
        ds.charts().len(),
    );
    println!();
    println!("{}", Table3::run(&world, &artifacts).render());
    println!("{}", Table4::run(&world, &artifacts).render());
    println!("{}", Table5::run(&world, &artifacts).render());
    println!("{}", Table6::run(&world, &artifacts).render());
}
