//! Quickstart: build a small world, buy incentivized installs for the
//! honey app on three platforms, and print the §3.2 findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iiscope::experiments::Section3;
use iiscope::{World, WorldConfig};

fn main() {
    // One seed controls everything: same seed, same world, same report.
    let world = World::build(WorldConfig::small(2020)).expect("world build");

    println!("Publishing the honey app and purchasing installs…");
    let study = world
        .run_honey_study(world.study_start())
        .expect("honey study");

    for outcome in &study.outcomes {
        println!(
            "{}: purchased {}, delivered {} in {} ({} completions paid)",
            outcome.iip,
            outcome.purchased,
            outcome.installs_delivered,
            outcome.delivery_duration(),
            outcome.completions_paid,
        );
    }
    println!();
    println!("{}", Section3::run(&world, study).render());
}
