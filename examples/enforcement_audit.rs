//! The §5.2 enforcement question, plus the ablation DESIGN.md calls
//! out: how much better would the Play Store do with the paper's
//! proposed lockstep detection turned up?
//!
//! Runs the same world twice — once with the calibrated "lax" default
//! enforcement, once with the strict profile — and compares observed
//! install-count decreases per app class.
//!
//! ```sh
//! cargo run --release --example enforcement_audit
//! ```

use iiscope::experiments::Section5;
use iiscope::subsystems::playstore::EnforcementConfig;
use iiscope::{World, WorldConfig};

fn run(label: &str, enforcement: EnforcementConfig) {
    let mut cfg = WorldConfig::small(9);
    cfg.enforcement = enforcement;
    let world = World::build(cfg).expect("world build");
    let artifacts = world.run_wild_study().expect("wild study");
    let s5 = Section5::run(&world, &artifacts);
    println!(
        "=== {label} (total installs removed: {}) ===",
        artifacts.enforcement_removed
    );
    println!("{}", s5.render());
}

fn main() {
    run(
        "default enforcement (calibrated to §5.2's laxity)",
        EnforcementConfig::default(),
    );
    run(
        "strict enforcement (paper's §5.2 proposal, dialed up)",
        EnforcementConfig::strict(),
    );
    run("no enforcement", EnforcementConfig::disabled());
}
