//! A close-up of the §4.1 interception mechanics:
//!
//! 1. a monitored phone (monitor CA installed) milks an offer wall
//!    through the MITM proxy — the plaintext lands in the intercept
//!    log;
//! 2. an ordinary user's phone (no monitor CA) refuses the proxy;
//! 3. with certificate pinning enabled in the affiliate apps (the
//!    ablation), the same pipeline goes blind — the condition the
//!    paper's footnote calls out ("none of the offer walls uses
//!    certificate pinning").
//!
//! ```sh
//! cargo run --release --example interception_demo
//! ```

use iiscope::subsystems::monitor::UiFuzzer;
use iiscope::{World, WorldConfig};
use iiscope_types::Country;

fn milk_count(world: &World) -> usize {
    let fuzzer = UiFuzzer::default();
    let mut total = 0;
    // Drive a couple of crawl rounds' worth of milking.
    for app in &world.affiliate_apps {
        total += world
            .infra
            .milk(app, Country::Us, &fuzzer)
            .map(|offers| offers.len())
            .unwrap_or(0);
    }
    total
}

fn main() {
    // World A: the paper's world — no pinning.
    let world = World::build(WorldConfig::small(5)).expect("world build");
    // Let some campaigns go live so walls have offers.
    let _ = world.run_wild_study().expect("wild study");
    let seen = milk_count(&world);
    println!("[no pinning]   offers recovered through the MITM proxy: {seen}");

    // An ordinary user's phone does NOT trust the monitor CA: the
    // proxy's forged certificate is rejected.
    let mut ordinary = iiscope::subsystems::wire::HttpClient::new(
        world.net.clone(),
        world.infra.vantage_addrs[&Country::Us],
        world.genuine_roots.clone(), // genuine roots only
        iiscope_types::SeedFork::new(1),
    )
    .via_proxy(world.infra.proxy.0, world.infra.proxy.1);
    let err = ordinary
        .get("https://wall.fyber.iiscope/offers?affiliate=com.bigcash.app")
        .unwrap_err();
    println!("[no mitm root] ordinary phone refuses the proxy: {err}");

    // World B: every affiliate app pins the genuine wall keys.
    let mut cfg = WorldConfig::small(5);
    cfg.walls_pin_certificates = true;
    let pinned = World::build(cfg).expect("world build");
    let _ = pinned.run_wild_study().expect("wild study");
    let seen_pinned = milk_count(&pinned);
    println!("[pinning on]   offers recovered through the MITM proxy: {seen_pinned}");
    println!();
    println!(
        "interception works only because the walls do not pin: {seen} offers vs {seen_pinned} under pinning"
    );
}
